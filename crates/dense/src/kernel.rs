//! Micro-kernel tiers and runtime kernel dispatch.
//!
//! The packed GEMM engine and the batched small-matrix engine both bottom
//! out in an `MR × NR` register-tile micro-kernel. This module owns the
//! kernel implementations and the policy that picks one at runtime:
//!
//! | tier     | tile  | ISA          | notes                                |
//! |----------|-------|--------------|--------------------------------------|
//! | `Scalar` | 8×4   | portable     | plain multiply-add, LLVM auto-vec    |
//! | `Avx2`   | 8×4   | AVX2 + FMA   | 8 `ymm` accumulators, PR-2 kernel    |
//! | `Avx512` | 16×4  | AVX-512F     | 8 `zmm` accumulators, 16 FMAs/step   |
//!
//! Both wide tiers keep `NR = 4`, so the NR-strided B panel layout is
//! identical across tiers and the packing routines never branch on the
//! tier. The AVX-512 tile doubles `MR` instead: two `zmm` loads per depth
//! step feed 8 independent accumulator chains — exactly the FMA
//! latency×throughput product of the 512-bit ports, the same occupancy
//! argument as the AVX2 kernel's 8 `ymm` chains.
//!
//! Each tier provides two entry points sharing one accumulation order:
//!
//! * a **packed kernel** (`MicroKernel`) reading MR/NR-strided panels —
//!   the blocked engine's innermost loop;
//! * a **direct kernel** (behind each tier's `DirectDriver`) reading
//!   column-major operands
//!   in place — the small-N fast path, which skips packing entirely for
//!   `NoTrans` operands (partial tiles use masked loads/stores, with dead
//!   lanes contributing exact zeros).
//!
//! **Bitwise contract.** For one C element, every tier accumulates
//! `a[i,p]·b[p,j]` over `p` in the same order, and the writeback is the
//! unfused `c + alpha·acc` (or `0.0 + alpha·acc` in store mode, the exact
//! bit pattern `fill(0.0)`-then-add would produce). Hence AVX2 and
//! AVX-512 results are bitwise identical (both fuse the accumulation
//! FMAs), packed and direct paths are bitwise identical, and the scalar
//! tier — whose accumulation is unfused, since Rust never contracts float
//! expressions — agrees to rounding (≲1e-15 relative per element, tested
//! at 1e-13).
//!
//! **Dispatch.** [`active_tier`] resolves, in priority order: a
//! thread-local override ([`with_tier`], for equivalence tests), a
//! process-wide override ([`set_default_tier`], behind bench `--kernel=`
//! flags), the `FSI_KERNEL=avx512|avx2|scalar` environment variable, and
//! finally feature detection (widest supported tier). A requested tier
//! the CPU lacks silently degrades to the next narrower one, so
//! `FSI_KERNEL=avx512` on an AVX2-only host runs the AVX2 kernel.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The packed micro-kernel signature: `(kc, alpha, Ã-panel, B̃-panel,
/// C-tile, ldc, m_eff, n_eff, store)`. With `store == false` the live
/// corner is updated as `c += alpha·acc`; with `store == true` it is
/// overwritten with `0.0 + alpha·acc` (bitwise what a zero-filled C plus
/// the accumulate path would hold, without the fill pass).
pub(crate) type MicroKernel =
    unsafe fn(usize, f64, *const f64, *const f64, *mut f64, usize, usize, usize, bool);

/// The direct (no-pack) whole-matrix driver signature: `(m, n, k, alpha,
/// A, lda, B, ldb, C, ldc, store)`. The driver walks register tiles
/// straight over the column-major operands and calls its tier's direct
/// kernel on each — the tile loop lives *inside* the tier's
/// `#[target_feature]` region so the kernel call is direct (and
/// inlinable), not an indirect function-pointer call per tile; at the
/// small-N shapes this path exists for, that per-tile indirection is a
/// measurable fraction of the whole product.
pub(crate) type DirectDriver = unsafe fn(
    usize,
    usize,
    usize,
    f64,
    *const f64,
    usize,
    *const f64,
    usize,
    *mut f64,
    usize,
    bool,
);

/// One dispatchable kernel tier: tile shape plus both kernel entry points.
pub(crate) struct KernelTier {
    /// Register-tile height (rows of C per kernel call).
    pub mr: usize,
    /// Register-tile width of the *packed* kernel. All tiers share
    /// `nr = 4` so the B panel layout is tier-independent.
    pub nr: usize,
    /// The packed-panel kernel.
    pub micro: MicroKernel,
    /// The in-place (no-pack) whole-matrix driver. Its tile width is the
    /// tier's own choice: the no-pack path reads B straight from
    /// column-major storage, so it is free to use a wider tile than the
    /// panel layout allows — AVX-512 runs 16×8 there (16 accumulator
    /// registers out of 32, twice the FMAs per A-load of the 16×4 shape,
    /// which is what closes the gap to FMA-port peak at the CLS sizes).
    pub driver: DirectDriver,
}

/// A micro-kernel instruction-set tier, from narrowest to widest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Portable plain multiply-add (auto-vectorized by LLVM).
    Scalar,
    /// AVX2 + FMA, 8×4 tile.
    Avx2,
    /// AVX-512F, 16×4 tile.
    Avx512,
}

impl Tier {
    /// The canonical lowercase name (`"scalar"`, `"avx2"`, `"avx512"`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
            Tier::Avx512 => "avx512",
        }
    }

    /// Parses a tier name as accepted by `FSI_KERNEL` and the bench
    /// `--kernel=` flag.
    pub fn parse(s: &str) -> Option<Tier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" | "portable" => Some(Tier::Scalar),
            "avx2" => Some(Tier::Avx2),
            "avx512" | "avx-512" => Some(Tier::Avx512),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this tier.
    pub fn is_available(self) -> bool {
        match self {
            Tier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Tier::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            Tier::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// The widest available tier at or below this one (the silent
    /// degradation path: `Avx512 → Avx2 → Scalar`).
    fn degrade(self) -> Tier {
        let mut t = self;
        loop {
            if t.is_available() {
                return t;
            }
            t = match t {
                Tier::Avx512 => Tier::Avx2,
                _ => Tier::Scalar,
            };
        }
    }

    fn code(self) -> u8 {
        match self {
            Tier::Scalar => 1,
            Tier::Avx2 => 2,
            Tier::Avx512 => 3,
        }
    }

    fn from_code(c: u8) -> Option<Tier> {
        match c {
            1 => Some(Tier::Scalar),
            2 => Some(Tier::Avx2),
            3 => Some(Tier::Avx512),
            _ => None,
        }
    }
}

/// The tiers the running CPU supports, narrowest first.
pub fn available_tiers() -> Vec<Tier> {
    [Tier::Scalar, Tier::Avx2, Tier::Avx512]
        .into_iter()
        .filter(|t| t.is_available())
        .collect()
}

/// Widest tier supported by the running CPU.
fn detect() -> Tier {
    Tier::Avx512.degrade()
}

/// Process default: `FSI_KERNEL` (degraded to availability) or detection,
/// resolved once.
fn process_default() -> Tier {
    static DEFAULT: OnceLock<Tier> = OnceLock::new();
    *DEFAULT.get_or_init(|| match std::env::var("FSI_KERNEL") {
        Ok(v) => match Tier::parse(&v) {
            Some(t) => t.degrade(),
            None => {
                eprintln!("fsi-dense: ignoring unknown FSI_KERNEL={v:?} (want avx512|avx2|scalar)");
                detect()
            }
        },
        Err(_) => detect(),
    })
}

/// Process-wide override set by [`set_default_tier`] (0 = unset).
static FORCED: AtomicU8 = AtomicU8::new(0);

thread_local! {
    /// Thread-local override set by [`with_tier`] (0 = unset).
    static TL_TIER: std::cell::Cell<u8> = const { std::cell::Cell::new(0) };
}

/// Forces the process-wide kernel tier (the bench binaries' `--kernel=`
/// flag). Takes priority over `FSI_KERNEL` and detection; [`with_tier`]
/// still wins on its thread.
///
/// # Errors
/// Returns the tier name when the running CPU cannot execute it — the
/// caller asked for an explicit tier, so unlike the env path this does
/// not degrade silently.
pub fn set_default_tier(tier: Tier) -> Result<(), String> {
    if !tier.is_available() {
        return Err(format!(
            "kernel tier {} not supported by this CPU",
            tier.name()
        ));
    }
    FORCED.store(tier.code(), Ordering::Relaxed);
    Ok(())
}

/// Runs `f` with the calling thread's kernel tier forced to `tier`
/// (restored afterwards, also on panic). The equivalence-test hook.
///
/// # Panics
/// Panics when the CPU cannot execute `tier`; gate calls on
/// [`Tier::is_available`].
pub fn with_tier<R>(tier: Tier, f: impl FnOnce() -> R) -> R {
    assert!(
        tier.is_available(),
        "kernel tier {} not supported by this CPU",
        tier.name()
    );
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            TL_TIER.with(|c| c.set(self.0));
        }
    }
    let _restore = TL_TIER.with(|c| {
        let prev = c.get();
        c.set(tier.code());
        Restore(prev)
    });
    f()
}

/// The tier the calling thread's next GEMM will run: thread-local
/// override, then process-wide override, then `FSI_KERNEL`/detection.
pub fn active_tier() -> Tier {
    if let Some(t) = Tier::from_code(TL_TIER.with(|c| c.get())) {
        return t;
    }
    if let Some(t) = Tier::from_code(FORCED.load(Ordering::Relaxed)) {
        return t;
    }
    process_default()
}

/// Resolves the active tier to its kernel table entry.
pub(crate) fn active() -> &'static KernelTier {
    tier_kernels(active_tier())
}

/// The kernel table entry for a tier (degraded to availability, so a
/// stored-but-stale override can never dispatch an illegal instruction).
pub(crate) fn tier_kernels(tier: Tier) -> &'static KernelTier {
    match tier.degrade() {
        Tier::Scalar => &SCALAR_TIER,
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => &AVX2_TIER,
        #[cfg(target_arch = "x86_64")]
        Tier::Avx512 => &AVX512_TIER,
        #[cfg(not(target_arch = "x86_64"))]
        _ => &SCALAR_TIER,
    }
}

static SCALAR_TIER: KernelTier = KernelTier {
    mr: 8,
    nr: 4,
    micro: micro_kernel_portable,
    driver: direct_driver_portable,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TIER: KernelTier = KernelTier {
    mr: 8,
    nr: 4,
    micro: micro_kernel_avx2,
    driver: direct_driver_avx2,
};

#[cfg(target_arch = "x86_64")]
static AVX512_TIER: KernelTier = KernelTier {
    mr: 16,
    nr: 4,
    micro: micro_kernel_avx512,
    driver: direct_driver_avx512,
};

/// Unfused `base + alpha·acc` writeback of one element; `store` replaces
/// `base` with literal `0.0` (including its effect on signed zeros), so
/// store mode is bitwise identical to filling C with zero first.
#[inline(always)]
unsafe fn write_elem(c: *mut f64, alpha: f64, acc: f64, store: bool) {
    let contrib = alpha * acc;
    *c = if store { 0.0 + contrib } else { *c + contrib };
}

/// Portable 8×4 micro-kernel: accumulates the full register tile from
/// zero over `kc` packed depth steps (padding lanes contribute exact
/// zeros), then writes `alpha ·` the live `m_eff × n_eff` corner into C.
/// Written over fixed-size arrays with plain multiply-add so LLVM
/// auto-vectorizes with whatever SIMD the baseline target allows, without
/// emitting libm `fma` calls.
///
/// # Safety
/// `ap` must point at `kc·8` packed values, `bp` at `kc·4`, and `c` at a
/// tile whose `m_eff × n_eff` corner is exclusively writable with column
/// stride `ldc`.
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel_portable(
    kc: usize,
    alpha: f64,
    ap: *const f64,
    bp: *const f64,
    c: *mut f64,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    store: bool,
) {
    const MR: usize = 8;
    const NR: usize = 4;
    let mut acc = [[0.0f64; MR]; NR];
    for p in 0..kc {
        let a = ap.add(p * MR);
        let b = bp.add(p * NR);
        let mut av = [0.0f64; MR];
        for (i, slot) in av.iter_mut().enumerate() {
            *slot = *a.add(i);
        }
        for (j, accj) in acc.iter_mut().enumerate() {
            let bj = *b.add(j);
            for (i, accij) in accj.iter_mut().enumerate() {
                *accij += av[i] * bj;
            }
        }
    }
    for (j, accj) in acc.iter().enumerate().take(n_eff) {
        let cj = c.add(j * ldc);
        for (i, &accij) in accj.iter().enumerate().take(m_eff) {
            write_elem(cj.add(i), alpha, accij, store);
        }
    }
}

/// Portable direct kernel: same 8×4 tile and accumulation order as
/// [`micro_kernel_portable`], but reading the operands in place —
/// `a[i, p] = a[i + p·lda]`, `b[p, j] = b[p + j·ldb]` — with short rows
/// zero-padded in registers.
///
/// # Safety
/// The `m_eff × kc` A tile, `kc × n_eff` B tile, and `m_eff × n_eff` C
/// tile must be in bounds at the given strides; the C tile must be
/// exclusively writable.
#[allow(clippy::too_many_arguments)]
unsafe fn direct_kernel_portable(
    kc: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    store: bool,
) {
    const MR: usize = 8;
    const NR: usize = 4;
    let mut acc = [[0.0f64; MR]; NR];
    for p in 0..kc {
        let ac = a.add(p * lda);
        let mut av = [0.0f64; MR];
        for (i, slot) in av.iter_mut().enumerate().take(m_eff) {
            *slot = *ac.add(i);
        }
        for (j, accj) in acc.iter_mut().enumerate().take(n_eff) {
            let bj = *b.add(p + j * ldb);
            for (i, accij) in accj.iter_mut().enumerate() {
                *accij += av[i] * bj;
            }
        }
    }
    for (j, accj) in acc.iter().enumerate().take(n_eff) {
        let cj = c.add(j * ldc);
        for (i, &accij) in accj.iter().enumerate().take(m_eff) {
            write_elem(cj.add(i), alpha, accij, store);
        }
    }
}

/// AVX2+FMA 8×4 packed kernel: the tile lives in 8 `ymm` accumulators
/// (two per C column), and each depth step issues 2 panel loads, 4
/// broadcasts, and 8 `vfmadd231pd` — exactly enough independent chains to
/// saturate both FMA ports of Haswell-and-later cores.
///
/// The writeback deliberately uses unfused multiply-then-add (not
/// `vfmadd`) so each C element sees the same rounding sequence as the
/// partial-tile path and the scalar-lane paths — results are bitwise
/// independent of where tile boundaries fall, which keeps parallel runs
/// bitwise equal to sequential ones.
///
/// # Safety
/// See [`micro_kernel_portable`]; additionally the CPU must support AVX2
/// and FMA (guaranteed by the tier dispatch).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel_avx2(
    kc: usize,
    alpha: f64,
    ap: *const f64,
    bp: *const f64,
    c: *mut f64,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    store: bool,
) {
    use std::arch::x86_64::*;
    const MR: usize = 8;
    const NR: usize = 4;
    let mut acc = [[_mm256_setzero_pd(); 2]; NR];
    for p in 0..kc {
        let a0 = _mm256_loadu_pd(ap.add(p * MR));
        let a1 = _mm256_loadu_pd(ap.add(p * MR + 4));
        for (j, accj) in acc.iter_mut().enumerate() {
            let bj = _mm256_broadcast_sd(&*bp.add(p * NR + j));
            accj[0] = _mm256_fmadd_pd(a0, bj, accj[0]);
            accj[1] = _mm256_fmadd_pd(a1, bj, accj[1]);
        }
    }
    let alphav = _mm256_set1_pd(alpha);
    if m_eff == MR && n_eff == NR {
        for (j, accj) in acc.iter().enumerate() {
            let cj = c.add(j * ldc);
            let lo_contrib = _mm256_mul_pd(alphav, accj[0]);
            let hi_contrib = _mm256_mul_pd(alphav, accj[1]);
            let (base_lo, base_hi) = if store {
                (_mm256_setzero_pd(), _mm256_setzero_pd())
            } else {
                (_mm256_loadu_pd(cj), _mm256_loadu_pd(cj.add(4)))
            };
            _mm256_storeu_pd(cj, _mm256_add_pd(base_lo, lo_contrib));
            _mm256_storeu_pd(cj.add(4), _mm256_add_pd(base_hi, hi_contrib));
        }
    } else {
        let mut tile = [[0.0f64; MR]; NR];
        for (j, accj) in acc.iter().enumerate() {
            _mm256_storeu_pd(tile[j].as_mut_ptr(), accj[0]);
            _mm256_storeu_pd(tile[j].as_mut_ptr().add(4), accj[1]);
        }
        for (j, tj) in tile.iter().enumerate().take(n_eff) {
            let cj = c.add(j * ldc);
            for (i, &v) in tj.iter().enumerate().take(m_eff) {
                write_elem(cj.add(i), alpha, v, store);
            }
        }
    }
}

/// Builds a 4-lane AVX2 load/store mask with the low `live` lanes
/// enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn avx2_mask(live: usize) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let lane = |i: usize| if live > i { -1i64 } else { 0 };
    _mm256_setr_epi64x(lane(0), lane(1), lane(2), lane(3))
}

/// AVX2+FMA direct kernel: identical FMA chains to [`micro_kernel_avx2`]
/// but reading operands in place; partial row tiles use masked loads and
/// stores (dead lanes load exact zeros, so they accumulate zeros and are
/// never written back).
///
/// # Safety
/// See [`direct_kernel_portable`]; additionally the CPU must support AVX2
/// and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_kernel_avx2(
    kc: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    store: bool,
) {
    use std::arch::x86_64::*;
    const MR: usize = 8;
    const NR: usize = 4;
    let alphav = _mm256_set1_pd(alpha);
    if m_eff == MR && n_eff == NR {
        // Full tile: constant trip counts, fully unrolled FMA group (see
        // the AVX-512 direct kernel).
        let mut acc = [[_mm256_setzero_pd(); 2]; NR];
        for p in 0..kc {
            let ac = a.add(p * lda);
            let a0 = _mm256_loadu_pd(ac);
            let a1 = _mm256_loadu_pd(ac.add(4));
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm256_broadcast_sd(&*b.add(p + j * ldb));
                accj[0] = _mm256_fmadd_pd(a0, bj, accj[0]);
                accj[1] = _mm256_fmadd_pd(a1, bj, accj[1]);
            }
        }
        for (j, accj) in acc.iter().enumerate() {
            let cj = c.add(j * ldc);
            let lo_contrib = _mm256_mul_pd(alphav, accj[0]);
            let hi_contrib = _mm256_mul_pd(alphav, accj[1]);
            let (base_lo, base_hi) = if store {
                (_mm256_setzero_pd(), _mm256_setzero_pd())
            } else {
                (_mm256_loadu_pd(cj), _mm256_loadu_pd(cj.add(4)))
            };
            _mm256_storeu_pd(cj, _mm256_add_pd(base_lo, lo_contrib));
            _mm256_storeu_pd(cj.add(4), _mm256_add_pd(base_hi, hi_contrib));
        }
    } else {
        let m_lo = avx2_mask(m_eff.min(4));
        let m_hi = avx2_mask(m_eff.saturating_sub(4));
        let mut acc = [[_mm256_setzero_pd(); 2]; NR];
        for p in 0..kc {
            let ac = a.add(p * lda);
            let a0 = _mm256_maskload_pd(ac, m_lo);
            let a1 = _mm256_maskload_pd(ac.add(4), m_hi);
            for (j, accj) in acc.iter_mut().enumerate().take(n_eff) {
                let bj = _mm256_broadcast_sd(&*b.add(p + j * ldb));
                accj[0] = _mm256_fmadd_pd(a0, bj, accj[0]);
                accj[1] = _mm256_fmadd_pd(a1, bj, accj[1]);
            }
        }
        for (j, accj) in acc.iter().enumerate().take(n_eff) {
            let cj = c.add(j * ldc);
            let lo_contrib = _mm256_mul_pd(alphav, accj[0]);
            let hi_contrib = _mm256_mul_pd(alphav, accj[1]);
            let (base_lo, base_hi) = if store {
                (_mm256_setzero_pd(), _mm256_setzero_pd())
            } else {
                (
                    _mm256_maskload_pd(cj, m_lo),
                    _mm256_maskload_pd(cj.add(4), m_hi),
                )
            };
            _mm256_maskstore_pd(cj, m_lo, _mm256_add_pd(base_lo, lo_contrib));
            _mm256_maskstore_pd(cj.add(4), m_hi, _mm256_add_pd(base_hi, hi_contrib));
        }
    }
}

/// AVX-512F 16×4 packed kernel: two `zmm` loads and 4 broadcasts feed 8
/// FMAs per depth step into 8 independent `zmm` accumulator chains. The
/// accumulation order per C element is identical to the AVX2 kernel's
/// (element `(i, j)` always lives in lane `i mod 8` of its half-tile), so
/// AVX-512 and AVX2 results are bitwise equal.
///
/// # Safety
/// `ap` must point at `kc·16` packed values, `bp` at `kc·4`; see
/// [`micro_kernel_portable`] for the C contract. The CPU must support
/// AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_kernel_avx512(
    kc: usize,
    alpha: f64,
    ap: *const f64,
    bp: *const f64,
    c: *mut f64,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    store: bool,
) {
    use std::arch::x86_64::*;
    const MR: usize = 16;
    const NR: usize = 4;
    let mut acc = [[_mm512_setzero_pd(); 2]; NR];
    for p in 0..kc {
        let a0 = _mm512_loadu_pd(ap.add(p * MR));
        let a1 = _mm512_loadu_pd(ap.add(p * MR + 8));
        for (j, accj) in acc.iter_mut().enumerate() {
            let bj = _mm512_set1_pd(*bp.add(p * NR + j));
            accj[0] = _mm512_fmadd_pd(a0, bj, accj[0]);
            accj[1] = _mm512_fmadd_pd(a1, bj, accj[1]);
        }
    }
    let alphav = _mm512_set1_pd(alpha);
    if m_eff == MR && n_eff == NR {
        for (j, accj) in acc.iter().enumerate() {
            let cj = c.add(j * ldc);
            let lo_contrib = _mm512_mul_pd(alphav, accj[0]);
            let hi_contrib = _mm512_mul_pd(alphav, accj[1]);
            let (base_lo, base_hi) = if store {
                (_mm512_setzero_pd(), _mm512_setzero_pd())
            } else {
                (_mm512_loadu_pd(cj), _mm512_loadu_pd(cj.add(8)))
            };
            _mm512_storeu_pd(cj, _mm512_add_pd(base_lo, lo_contrib));
            _mm512_storeu_pd(cj.add(8), _mm512_add_pd(base_hi, hi_contrib));
        }
    } else {
        let mut tile = [[0.0f64; MR]; NR];
        for (j, accj) in acc.iter().enumerate() {
            _mm512_storeu_pd(tile[j].as_mut_ptr(), accj[0]);
            _mm512_storeu_pd(tile[j].as_mut_ptr().add(8), accj[1]);
        }
        for (j, tj) in tile.iter().enumerate().take(n_eff) {
            let cj = c.add(j * ldc);
            for (i, &v) in tj.iter().enumerate().take(m_eff) {
                write_elem(cj.add(i), alpha, v, store);
            }
        }
    }
}

/// AVX-512F direct kernel, 16×8: per element the same sequential FMA
/// chain over `k` as [`micro_kernel_avx512`] (tile width never changes an
/// element's accumulation order, so results stay bitwise identical to the
/// 16×4 packed kernel), but reading operands in place with twice the FMAs
/// per A-load — 16 accumulator registers of the 32 AVX-512 offers.
/// Partial row tiles use `k`-masked zero-filling loads and masked stores.
///
/// # Safety
/// See [`direct_kernel_portable`]; additionally the CPU must support
/// AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn direct_kernel_avx512(
    kc: usize,
    alpha: f64,
    a: *const f64,
    lda: usize,
    b: *const f64,
    ldb: usize,
    c: *mut f64,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    store: bool,
) {
    use std::arch::x86_64::*;
    const MR: usize = 16;
    const NR: usize = 8;
    let alphav = _mm512_set1_pd(alpha);
    if m_eff == MR && n_eff == NR {
        // Full tile: constant trip counts so LLVM fully unrolls the
        // 8-column FMA group per depth step (a runtime `n_eff` bound here
        // keeps a counted loop in the hot path and costs ~5% at N = 64).
        let mut acc = [[_mm512_setzero_pd(); 2]; NR];
        for p in 0..kc {
            let ac = a.add(p * lda);
            let a0 = _mm512_loadu_pd(ac);
            let a1 = _mm512_loadu_pd(ac.add(8));
            for (j, accj) in acc.iter_mut().enumerate() {
                let bj = _mm512_set1_pd(*b.add(p + j * ldb));
                accj[0] = _mm512_fmadd_pd(a0, bj, accj[0]);
                accj[1] = _mm512_fmadd_pd(a1, bj, accj[1]);
            }
        }
        for (j, accj) in acc.iter().enumerate() {
            let cj = c.add(j * ldc);
            let lo_contrib = _mm512_mul_pd(alphav, accj[0]);
            let hi_contrib = _mm512_mul_pd(alphav, accj[1]);
            let (base_lo, base_hi) = if store {
                (_mm512_setzero_pd(), _mm512_setzero_pd())
            } else {
                (_mm512_loadu_pd(cj), _mm512_loadu_pd(cj.add(8)))
            };
            _mm512_storeu_pd(cj, _mm512_add_pd(base_lo, lo_contrib));
            _mm512_storeu_pd(cj.add(8), _mm512_add_pd(base_hi, hi_contrib));
        }
    } else {
        let k_lo: __mmask8 = if m_eff >= 8 { 0xff } else { (1u8 << m_eff) - 1 };
        let k_hi: __mmask8 = if m_eff > 8 {
            ((1u32 << (m_eff - 8)) - 1) as u8
        } else {
            0
        };
        let mut acc = [[_mm512_setzero_pd(); 2]; NR];
        for p in 0..kc {
            let ac = a.add(p * lda);
            let a0 = _mm512_maskz_loadu_pd(k_lo, ac);
            let a1 = _mm512_maskz_loadu_pd(k_hi, ac.add(8));
            for (j, accj) in acc.iter_mut().enumerate().take(n_eff) {
                let bj = _mm512_set1_pd(*b.add(p + j * ldb));
                accj[0] = _mm512_fmadd_pd(a0, bj, accj[0]);
                accj[1] = _mm512_fmadd_pd(a1, bj, accj[1]);
            }
        }
        for (j, accj) in acc.iter().enumerate().take(n_eff) {
            let cj = c.add(j * ldc);
            let lo_contrib = _mm512_mul_pd(alphav, accj[0]);
            let hi_contrib = _mm512_mul_pd(alphav, accj[1]);
            let (base_lo, base_hi) = if store {
                (_mm512_setzero_pd(), _mm512_setzero_pd())
            } else {
                (
                    _mm512_maskz_loadu_pd(k_lo, cj),
                    _mm512_maskz_loadu_pd(k_hi, cj.add(8)),
                )
            };
            _mm512_mask_storeu_pd(cj, k_lo, _mm512_add_pd(base_lo, lo_contrib));
            _mm512_mask_storeu_pd(cj.add(8), k_hi, _mm512_add_pd(base_hi, hi_contrib));
        }
    }
}

/// Generates one tier's whole-matrix direct driver: the register-tile
/// loop over `m × n`, calling the tier's direct kernel on each tile. The
/// attribute list (forwarded verbatim) places the loop inside the same
/// `#[target_feature]` region as the kernel it calls, so the call is
/// direct and inlinable.
macro_rules! direct_driver {
    ($(#[$attr:meta])* $name:ident, $kernel:ident, $mr:expr, $nr:expr) => {
        $(#[$attr])*
        #[allow(clippy::too_many_arguments)]
        unsafe fn $name(
            m: usize,
            n: usize,
            k: usize,
            alpha: f64,
            a: *const f64,
            lda: usize,
            b: *const f64,
            ldb: usize,
            c: *mut f64,
            ldc: usize,
            store: bool,
        ) {
            let mut jr = 0;
            while jr < n {
                let n_eff = ($nr).min(n - jr);
                let mut ir = 0;
                while ir < m {
                    let m_eff = ($mr).min(m - ir);
                    // SAFETY: the A tile at row `ir` has `m_eff ≤ MR` live
                    // rows and `k` columns at stride `lda`; the B tile at
                    // column `jr` has `n_eff` columns of depth `k`; the C
                    // corner is inside the caller's exclusive view. The
                    // kernel masks all dead lanes.
                    $kernel(
                        k,
                        alpha,
                        a.add(ir),
                        lda,
                        b.add(jr * ldb),
                        ldb,
                        c.add(ir + jr * ldc),
                        ldc,
                        m_eff,
                        n_eff,
                        store,
                    );
                    ir += $mr;
                }
                jr += $nr;
            }
        }
    };
}

direct_driver!(direct_driver_portable, direct_kernel_portable, 8, 4);
direct_driver!(
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    direct_driver_avx2,
    direct_kernel_avx2,
    8,
    4
);
direct_driver!(
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    direct_driver_avx512,
    direct_kernel_avx512,
    16,
    8
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_canonical_names() {
        assert_eq!(Tier::parse("avx512"), Some(Tier::Avx512));
        assert_eq!(Tier::parse("AVX2"), Some(Tier::Avx2));
        assert_eq!(Tier::parse(" scalar "), Some(Tier::Scalar));
        assert_eq!(Tier::parse("neon"), None);
    }

    #[test]
    fn scalar_always_available_and_degrade_terminates() {
        assert!(Tier::Scalar.is_available());
        for t in [Tier::Scalar, Tier::Avx2, Tier::Avx512] {
            assert!(t.degrade().is_available());
        }
    }

    #[test]
    fn available_tiers_is_prefix_closed() {
        // If a wide tier is available, every narrower one is too (the
        // degradation chain never dead-ends).
        let avail = available_tiers();
        assert!(avail.contains(&Tier::Scalar));
        if avail.contains(&Tier::Avx512) {
            assert!(avail.contains(&Tier::Avx2), "avx512 without avx2?");
        }
    }

    #[test]
    fn with_tier_overrides_and_restores() {
        let before = active_tier();
        with_tier(Tier::Scalar, || {
            assert_eq!(active_tier(), Tier::Scalar);
            assert_eq!(tier_kernels(active_tier()).mr, 8);
        });
        assert_eq!(active_tier(), before);
    }

    #[test]
    fn tier_table_shapes_are_consistent() {
        for t in available_tiers() {
            let kt = tier_kernels(t);
            assert_eq!(kt.nr, 4, "all tiers share the B panel layout");
            assert!(kt.mr == 8 || kt.mr == 16);
        }
    }
}
