//! Householder QR factorization (GEQRF) and blocked application of the
//! orthogonal factor (ORMQR, compact-WY form).
//!
//! BSOFI — stage 2 of the FSI algorithm — factors a sequence of `2N × N`
//! panels and then right-applies the accumulated `Qᵀ` to the `bN`-wide
//! structured `R⁻¹`. That application is the largest flop block of BSOFI,
//! so it must run at level-3 speed: reflectors are applied in blocks of
//! `IB` through the compact-WY identity `Q = I − V·T·Vᵀ` (LARFT/LARFB),
//! turning the whole operation into three GEMMs per block.
//!
//! Conventions follow LAPACK: `Q = H_0·H_1⋯H_{k−1}`,
//! `H_j = I − τ_j·v_j·v_jᵀ`, `v_j` unit-diagonal and stored below the
//! diagonal of the factored matrix, `R` in the upper triangle.

use crate::blas::{axpy, gemv_t_uncounted, ger_uncounted, nrm2};
use crate::gemm::{gemm_op_uncounted, Op};
use crate::matrix::{MatMut, Matrix};
use fsi_runtime::{flops, workspace, Par};

/// Reflector block size for compact-WY application.
const IB: usize = 32;

/// A Householder QR factorization of an `m × n` matrix with `m ≥ n`.
pub struct QrFactor {
    /// Packed factors: `R` upper, reflector vectors below the diagonal.
    qr: Matrix,
    /// Reflector scalars `τ_j`.
    tau: Vec<f64>,
}

/// Factors `A = Q·R`, consuming `A`.
///
/// Blocked algorithm: factor an `IB`-column panel with the unblocked
/// kernel, form its compact-WY `T`, and apply `(I − V·Tᵀ·Vᵀ)` to the
/// trailing columns with the level-3 LARFB kernel — so the bulk of the
/// factorization flops are GEMMs, as in LAPACK's DGEQRF.
///
/// # Panics
/// Panics unless `A.rows() >= A.cols()`.
pub fn geqrf(a: Matrix) -> QrFactor {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "geqrf requires m >= n (got {m} x {n})");
    let _kernel = fsi_runtime::trace::kernel_span("geqrf");
    static METER: fsi_runtime::metrics::Meter = fsi_runtime::metrics::Meter::new("dense.geqrf");
    let _meter = METER.start(flops::counts::geqrf(m, n));
    flops::add_flops(flops::counts::geqrf(m, n));
    let mut qr = a;
    let mut tau = vec![0.0; n];
    let mut j0 = 0;
    while j0 < n {
        let kb = IB.min(n - j0);
        // Unblocked factorization of the panel columns [j0, j0+kb),
        // applying reflectors only within the panel.
        for j in j0..j0 + kb {
            tau[j] = house_generate(&mut qr, j);
            if tau[j] != 0.0 && j + 1 < j0 + kb {
                house_apply_trailing(&mut qr, j, tau[j], j0 + kb);
            }
        }
        // Level-3 trailing update of columns [j0+kb, n).
        if j0 + kb < n {
            let (v, t) = build_vt(&qr, &tau, j0, kb);
            let trailing = qr.view_mut(j0, j0 + kb, m - j0, n - j0 - kb);
            larfb_left(Par::Seq, &v, &t, true, trailing);
        }
        j0 += kb;
    }
    QrFactor { qr, tau }
}

/// Generates the Householder reflector annihilating `A[j+1.., j]`;
/// stores `β` at `(j, j)`, `v[1..]` below, and returns `τ`.
fn house_generate(a: &mut Matrix, j: usize) -> f64 {
    let m = a.rows();
    let alpha = a[(j, j)];
    // Norm of the subdiagonal part.
    let mut xnorm = 0.0;
    if j + 1 < m {
        let col: Vec<f64> = (j + 1..m).map(|i| a[(i, j)]).collect();
        xnorm = nrm2(&col);
    }
    if xnorm == 0.0 {
        return 0.0; // H = I
    }
    let beta = -alpha.signum() * (alpha * alpha + xnorm * xnorm).sqrt();
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for i in j + 1..m {
        a[(i, j)] *= scale;
    }
    a[(j, j)] = beta;
    tau
}

/// Applies `H_j = I − τ·v·vᵀ` to the columns `A[j.., j+1..end)`.
fn house_apply_trailing(a: &mut Matrix, j: usize, tau: f64, end: usize) {
    let m = a.rows();
    let width = end - j - 1;
    // v = [1; A[j+1.., j]]
    let mut v = Vec::with_capacity(m - j);
    v.push(1.0);
    for i in j + 1..m {
        v.push(a[(i, j)]);
    }
    // w = A[j.., j+1..end)ᵀ v ; A[j.., j+1..end) −= τ v wᵀ
    // Uncounted: the enclosing GEQRF already charged its analytic total.
    let mut w = vec![0.0; width];
    {
        let trail = a.view(j, j + 1, m - j, width);
        gemv_t_uncounted(1.0, trail, &v, 0.0, &mut w);
    }
    ger_uncounted(-tau, &v, &w, a.view_mut(j, j + 1, m - j, width));
}

/// Which side of `C` the orthogonal factor is applied to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// `C := op(Q)·C`
    Left,
    /// `C := C·op(Q)`
    Right,
}

impl QrFactor {
    /// Row count of the factored matrix.
    pub fn m(&self) -> usize {
        self.qr.rows()
    }

    /// Column count (= number of reflectors).
    pub fn n(&self) -> usize {
        self.qr.cols()
    }

    /// The packed factor matrix (for inspection).
    pub fn packed(&self) -> &Matrix {
        &self.qr
    }

    /// The reflector scalars.
    pub fn taus(&self) -> &[f64] {
        &self.tau
    }

    /// Extracts the `n × n` upper-triangular `R`.
    pub fn r(&self) -> Matrix {
        let n = self.n();
        let mut out = Matrix::zeros(n, n);
        self.write_r(out.as_mut());
        out
    }

    /// Writes the `n × n` upper-triangular factor `R` into `out` without
    /// allocating — the panel API callers use to cache `R` diagonals
    /// instead of materializing a fresh matrix per access.
    ///
    /// # Panics
    /// Panics unless `out` is `n × n`.
    pub fn write_r(&self, mut out: MatMut<'_>) {
        let n = self.n();
        assert_eq!((out.rows(), out.cols()), (n, n), "write_r shape mismatch");
        for j in 0..n {
            let col = out.col_mut(j);
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = if i <= j { self.qr[(i, j)] } else { 0.0 };
            }
        }
    }

    /// `C := Qᵀ·C` (blocked). `C` must have `m` rows.
    pub fn apply_qt_left(&self, par: Par<'_>, c: MatMut<'_>) {
        self.apply(par, Side::Left, true, c)
    }

    /// `C := Q·C` (blocked). `C` must have `m` rows.
    pub fn apply_q_left(&self, par: Par<'_>, c: MatMut<'_>) {
        self.apply(par, Side::Left, false, c)
    }

    /// `C := C·Qᵀ` (blocked). `C` must have `m` columns.
    pub fn apply_qt_right(&self, par: Par<'_>, c: MatMut<'_>) {
        self.apply(par, Side::Right, true, c)
    }

    /// `C := C·Q` (blocked). `C` must have `m` columns.
    pub fn apply_q_right(&self, par: Par<'_>, c: MatMut<'_>) {
        self.apply(par, Side::Right, false, c)
    }

    /// Blocked compact-WY application of `op(Q)`.
    fn apply(&self, par: Par<'_>, side: Side, trans: bool, mut c: MatMut<'_>) {
        let m = self.m();
        match side {
            Side::Left => assert_eq!(c.rows(), m, "apply: C row count mismatch"),
            Side::Right => assert_eq!(c.cols(), m, "apply: C column count mismatch"),
        }
        let k = self.n();
        let other_dim = match side {
            Side::Left => c.cols(),
            Side::Right => c.rows(),
        };
        let _kernel = fsi_runtime::trace::kernel_span("ormqr");
        flops::add_flops(flops::counts::ormqr(m, k, other_dim));
        // Block order: LARFB applies H_{i0}⋯H_{i0+kb−1} together.
        //   left  & trans  (QᵀC): forward          (H_0 first)
        //   left  & !trans (QC) : backward
        //   right & !trans (CQ) : forward
        //   right & trans  (CQᵀ): backward
        let forward = trans == (side == Side::Left);
        let mut starts: Vec<usize> = (0..k).step_by(IB).collect();
        if !forward {
            starts.reverse();
        }
        for i0 in starts {
            let kb = IB.min(k - i0);
            let (v, t) = self.block_vt(i0, kb);
            let rows_below = m - i0;
            match side {
                Side::Left => {
                    let sub = c.rb_mut().submatrix(i0, 0, rows_below, other_dim);
                    larfb_left(par, &v, &t, trans, sub);
                }
                Side::Right => {
                    let sub = c.rb_mut().submatrix(0, i0, other_dim, rows_below);
                    larfb_right(par, &v, &t, trans, sub);
                }
            }
        }
    }

    /// Materializes the reflector block `V` and its triangular factor `T`
    /// (see [`build_vt`]).
    fn block_vt(&self, i0: usize, kb: usize) -> (Matrix, Matrix) {
        build_vt(&self.qr, &self.tau, i0, kb)
    }

    /// Explicit `m × m` orthogonal factor (tests and small problems only).
    pub fn q(&self) -> Matrix {
        let mut q = Matrix::identity(self.m());
        self.apply_q_left(Par::Seq, q.as_mut());
        q
    }

    /// Thin `m × n` orthogonal factor.
    pub fn q_thin(&self) -> Matrix {
        let q = self.q();
        q.block(0, 0, self.m(), self.n())
    }
}

/// Materializes the reflector block `V` (unit lower trapezoid,
/// `(m−i0) × kb`) of the packed factor and its triangular factor `T`
/// (LARFT, forward columnwise): `H_{i0}⋯H_{i0+kb−1} = I − V·T·Vᵀ`.
fn build_vt(qr: &Matrix, tau: &[f64], i0: usize, kb: usize) -> (Matrix, Matrix) {
    let m = qr.rows();
    let rows = m - i0;
    let mut v = Matrix::zeros(rows, kb);
    for jj in 0..kb {
        let col = i0 + jj;
        v[(jj, jj)] = 1.0;
        for i in col + 1..m {
            v[(i - i0, jj)] = qr[(i, col)];
        }
    }
    // T[0..j, j] = −τ_j · T[0..j, 0..j] · (V[:, 0..j]ᵀ v_j); T[j,j] = τ_j.
    let mut t = Matrix::zeros(kb, kb);
    for j in 0..kb {
        let tj = tau[i0 + j];
        t[(j, j)] = tj;
        if j == 0 || tj == 0.0 {
            continue;
        }
        // w = V[:, 0..j]ᵀ · v_j  (only rows j.. of v_j are nonzero).
        // Uncounted: LARFT overhead is inside GEQRF/ORMQR's analytic total.
        let mut w = vec![0.0; j];
        let vj = v.col_from(j);
        {
            let vblock = v.view(j, 0, rows - j, j);
            gemv_t_uncounted(-tj, vblock, &vj[j..], 0.0, &mut w);
        }
        // w := T[0..j, 0..j] · w  (upper-triangular matvec).
        for i in 0..j {
            let mut s = 0.0;
            for p in i..j {
                s += t[(i, p)] * w[p];
            }
            t[(i, j)] = s;
        }
    }
    (v, t)
}

/// `C := (I − V·op(T)·Vᵀ)·C` — LARFB, left side. The `kb × n` reflector
/// workspace is borrowed from the thread-local pool, so repeated block
/// applications (BSOFI right-applies Qᵀ per factored panel) allocate
/// nothing in steady state.
fn larfb_left(par: Par<'_>, v: &Matrix, t: &Matrix, trans: bool, mut c: MatMut<'_>) {
    let kb = v.cols();
    let n = c.cols();
    // The enclosing GEQRF/ORMQR already charged its analytic flop total,
    // so these internal products must not charge again (uncounted).
    workspace::with_scratch(kb * n, |wbuf| {
        let mut w = MatMut::from_slice(wbuf, kb, n, kb.max(1));
        // W := Vᵀ·C  (kb × n)
        gemm_op_uncounted(
            par,
            1.0,
            Op::Trans,
            v.as_ref(),
            Op::NoTrans,
            c.as_ref(),
            0.0,
            w.rb_mut(),
        );
        // W := op(T)·W  (small triangular multiply, in place).
        trmm_upper(t, trans, w.rb_mut());
        // C := C − V·W
        gemm_op_uncounted(
            par,
            -1.0,
            Op::NoTrans,
            v.as_ref(),
            Op::NoTrans,
            w.as_ref(),
            1.0,
            c.rb_mut(),
        );
    });
}

/// `C := C·(I − V·op(T)·Vᵀ)` — LARFB, right side. Workspace borrowed from
/// the thread-local pool, as in [`larfb_left`].
fn larfb_right(par: Par<'_>, v: &Matrix, t: &Matrix, trans: bool, mut c: MatMut<'_>) {
    let kb = v.cols();
    let rows = c.rows();
    workspace::with_scratch(rows * kb, |wbuf| {
        let mut w = MatMut::from_slice(wbuf, rows, kb, rows.max(1));
        // W := C·V  (rows × kb)
        gemm_op_uncounted(
            par,
            1.0,
            Op::NoTrans,
            c.as_ref(),
            Op::NoTrans,
            v.as_ref(),
            0.0,
            w.rb_mut(),
        );
        // W := W·op(T): equivalently Wᵀ := op(T)ᵀ·Wᵀ; apply on the
        // transposed triangle orientation.
        trmm_upper_right(t, trans, w.rb_mut());
        // C := C − W·Vᵀ
        gemm_op_uncounted(
            par,
            -1.0,
            Op::NoTrans,
            w.as_ref(),
            Op::Trans,
            v.as_ref(),
            1.0,
            c.rb_mut(),
        );
    });
}

/// `W := op(T)·W` with `T` small upper triangular, `W` a column-major
/// view (columns processed as contiguous slices).
fn trmm_upper(t: &Matrix, trans: bool, mut w: MatMut<'_>) {
    let kb = t.rows();
    for c in 0..w.cols() {
        let col = w.col_mut(c);
        if !trans {
            // Top-down: w[i] = Σ_{p≥i} T[i,p]·w[p].
            for i in 0..kb {
                let mut s = 0.0;
                for (p, &wp) in col.iter().enumerate().take(kb).skip(i) {
                    s += t[(i, p)] * wp;
                }
                col[i] = s;
            }
        } else {
            // Tᵀ is lower triangular: bottom-up.
            for i in (0..kb).rev() {
                let mut s = 0.0;
                for (p, &wp) in col.iter().enumerate().take(i + 1) {
                    s += t[(p, i)] * wp;
                }
                col[i] = s;
            }
        }
    }
}

/// `W := W·op(T)` with `T` small upper triangular: column axpy streams
/// (each result column is a combination of source columns, updated in an
/// order that never reads an already-overwritten column).
fn trmm_upper_right(t: &Matrix, trans: bool, mut w: MatMut<'_>) {
    let kb = t.rows();
    let rows = w.rows();
    if !trans {
        // W[:, j] := Σ_{p≤j} W[:, p]·T[p, j], right-to-left.
        for j in (0..kb).rev() {
            let tjj = t[(j, j)];
            for x in w.col_mut(j) {
                *x *= tjj;
            }
            for p in 0..j {
                let tpj = t[(p, j)];
                if tpj != 0.0 {
                    let (left, mut right) = w.rb_mut().split_at_col(j);
                    axpy(tpj, left.as_ref().col(p), right.col_mut(0));
                }
            }
        }
    } else {
        // W[:, j] := Σ_{p≥j} W[:, p]·T[j, p], left-to-right.
        for j in 0..kb {
            let tjj = t[(j, j)];
            for x in w.col_mut(j) {
                *x *= tjj;
            }
            for p in j + 1..kb {
                let tjp = t[(j, p)];
                if tjp != 0.0 {
                    let (mut left, right) = w.rb_mut().split_at_col(p);
                    let mut target = left.rb_mut().submatrix(0, j, rows, 1);
                    axpy(tjp, right.as_ref().col(0), target.col_mut(0));
                }
            }
        }
    }
}

impl Matrix {
    /// Copies column `j` into a vector (helper for reflector assembly).
    fn col_from(&self, j: usize) -> Vec<f64> {
        self.as_ref().col(j).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm_op, mul, test_matrix};

    fn assert_small(m: &Matrix, tol: f64, what: &str) {
        assert!(m.max_abs() < tol, "{what}: {} >= {tol}", m.max_abs());
    }

    #[test]
    fn qr_reconstructs_a() {
        for &(m, n) in &[
            (1, 1),
            (5, 3),
            (8, 8),
            (40, 40),
            (64, 32),
            (70, 70),
            (37, 36),
        ] {
            let a = test_matrix(m, n, (m * n) as u64);
            let f = geqrf(a.clone());
            let q = f.q();
            let r_full =
                Matrix::from_fn(m, n, |i, j| if i <= j { f.packed()[(i, j)] } else { 0.0 });
            let mut resid = mul(&q, &r_full);
            resid.sub_assign(&a);
            assert_small(&resid, 1e-12 * (m as f64), &format!("QR−A for {m}x{n}"));
        }
    }

    #[test]
    fn q_is_orthogonal() {
        let a = test_matrix(50, 50, 77);
        let f = geqrf(a);
        let q = f.q();
        let mut qtq = Matrix::zeros(50, 50);
        gemm_op(
            Par::Seq,
            1.0,
            Op::Trans,
            q.as_ref(),
            Op::NoTrans,
            q.as_ref(),
            0.0,
            qtq.as_mut(),
        );
        qtq.add_diag(-1.0);
        assert_small(&qtq, 1e-12, "QᵀQ − I");
    }

    #[test]
    fn tall_panel_qr_like_bsofi() {
        // The exact shape BSOFI uses: 2N × N panels.
        let n = 24;
        let a = test_matrix(2 * n, n, 5);
        let f = geqrf(a.clone());
        let q = f.q();
        let mut r_full = Matrix::zeros(2 * n, n);
        for i in 0..n {
            for j in i..n {
                r_full[(i, j)] = f.packed()[(i, j)];
            }
        }
        let mut resid = mul(&q, &r_full);
        resid.sub_assign(&a);
        assert_small(&resid, 1e-12, "2NxN panel");
        assert_eq!(f.r().rows(), n);
    }

    #[test]
    fn all_four_applications_match_explicit_q() {
        let m = 45; // not a multiple of IB, exercises remainder blocks
        let a = test_matrix(m, m, 9);
        let f = geqrf(a);
        let q = f.q();
        let c0 = test_matrix(m, 17, 10);
        // Left, trans.
        let mut c = c0.clone();
        f.apply_qt_left(Par::Seq, c.as_mut());
        let mut want = Matrix::zeros(m, 17);
        gemm_op(
            Par::Seq,
            1.0,
            Op::Trans,
            q.as_ref(),
            Op::NoTrans,
            c0.as_ref(),
            0.0,
            want.as_mut(),
        );
        let mut d = c.clone();
        d.sub_assign(&want);
        assert_small(&d, 1e-12, "QᵀC");
        // Left, no-trans.
        let mut c = c0.clone();
        f.apply_q_left(Par::Seq, c.as_mut());
        let want = mul(&q, &c0);
        let mut d = c.clone();
        d.sub_assign(&want);
        assert_small(&d, 1e-12, "QC");
        // Right side uses a 17 × m C.
        let c0r = test_matrix(17, m, 11);
        let mut c = c0r.clone();
        f.apply_q_right(Par::Seq, c.as_mut());
        let want = mul(&c0r, &q);
        let mut d = c.clone();
        d.sub_assign(&want);
        assert_small(&d, 1e-12, "CQ");
        let mut c = c0r.clone();
        f.apply_qt_right(Par::Seq, c.as_mut());
        let mut want = Matrix::zeros(17, m);
        gemm_op(
            Par::Seq,
            1.0,
            Op::NoTrans,
            c0r.as_ref(),
            Op::Trans,
            q.as_ref(),
            0.0,
            want.as_mut(),
        );
        let mut d = c.clone();
        d.sub_assign(&want);
        assert_small(&d, 1e-12, "CQᵀ");
    }

    #[test]
    fn apply_roundtrip_q_qt_is_identity() {
        let m = 33;
        let a = test_matrix(m, 20, 12);
        let f = geqrf(a);
        let c0 = test_matrix(m, 6, 13);
        let mut c = c0.clone();
        f.apply_qt_left(Par::Seq, c.as_mut());
        f.apply_q_left(Par::Seq, c.as_mut());
        c.sub_assign(&c0);
        assert_small(&c, 1e-12, "Q Qᵀ C − C");
    }

    #[test]
    fn parallel_application_matches_sequential() {
        let pool = fsi_runtime::ThreadPool::new(4);
        let m = 90;
        let a = test_matrix(m, m, 14);
        let f = geqrf(a);
        let c0 = test_matrix(m, 120, 15);
        let mut c_seq = c0.clone();
        f.apply_qt_left(Par::Seq, c_seq.as_mut());
        let mut c_par = c0.clone();
        f.apply_qt_left(Par::Pool(&pool), c_par.as_mut());
        c_par.sub_assign(&c_seq);
        assert_small(&c_par, 1e-13, "par vs seq");
    }

    #[test]
    fn q_thin_has_orthonormal_columns() {
        let a = test_matrix(30, 12, 16);
        let f = geqrf(a);
        let qt = f.q_thin();
        assert_eq!((qt.rows(), qt.cols()), (30, 12));
        let mut g = Matrix::zeros(12, 12);
        gemm_op(
            Par::Seq,
            1.0,
            Op::Trans,
            qt.as_ref(),
            Op::NoTrans,
            qt.as_ref(),
            0.0,
            g.as_mut(),
        );
        g.add_diag(-1.0);
        assert_small(&g, 1e-12, "thin Q orthonormality");
    }

    #[test]
    fn zero_matrix_gives_identity_reflectors() {
        let a = Matrix::zeros(6, 4);
        let f = geqrf(a);
        assert!(f.taus().iter().all(|&t| t == 0.0));
        let q = f.q();
        let mut d = q.clone();
        d.add_diag(-1.0);
        assert_eq!(d.max_abs(), 0.0, "Q of zero matrix is exactly I");
    }
}
