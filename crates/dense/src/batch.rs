//! Batched small-matrix GEMM: many uniform-shape products through one
//! engine invocation.
//!
//! The FSI paper's clustering stage (Alg. 1) and the hybrid multi-matrix
//! driver (Alg. 3) spend their time on *many small* `N × N` products —
//! `B·c` independent factor multiplies per refresh at `N ≤ 64`. Routed
//! through the general engine one call at a time, over half the runtime
//! goes to per-call overhead: packing both operands, the `beta = 0` fill
//! pass over C, workspace borrows, and accounting. [`gemm_batched`]
//! amortizes all four across a batch:
//!
//! * **shared operands pack once** — a [`BatchOperand::Shared`] factor is
//!   packed a single time per worker chunk and reused for every product
//!   in the batch;
//! * **small-N fast path** — when the shape fits one cache block
//!   (`m, n ≤ MC`, `k ≤ KC`), the MC/KC/NC loop nest collapses to a bare
//!   macro loop; `NoTrans`·`NoTrans` products skip packing entirely and
//!   run the in-place [`crate::kernel`] direct kernels (masked
//!   loads/stores on partial tiles);
//! * **store-mode writeback** — `beta = 0` skips the C fill pass: the
//!   kernel writes `0.0 + alpha·acc`, bitwise what fill-then-accumulate
//!   would produce;
//! * **one dispatch, one accounting block** — the batch is split over the
//!   thread pool once (each worker streams a contiguous chunk), and
//!   flops/bytes/meters are charged once for the whole batch under the
//!   `gemm_batched` kernel span.
//!
//! Results are **bitwise identical** to calling [`crate::gemm()`] in a loop
//! with the same `Par`-sequential kernels: at small-path shapes the
//! general engine performs exactly one pack + macro sweep with the same
//! micro-kernel accumulation order, and the direct kernels share that
//! order (see the contract in [`crate::kernel`]). The proptests in
//! `tests/prop_batch.rs` pin this down per Op combination, remainder
//! shape, and batch size.

use crate::gemm::{gemm_count, gemm_op_uncounted, pack_a, pack_b, Op, KC, MC};
use crate::kernel::{self, KernelTier};
use crate::matrix::{MatMut, MatRef, Matrix};
use fsi_runtime::{flops, workspace, Par};

/// One side of a batched product: either a single factor shared by every
/// product in the batch, or a per-product slice of factors.
#[derive(Clone, Copy)]
pub enum BatchOperand<'a> {
    /// The same matrix multiplies every batch item (packed once per
    /// worker chunk on the packed small path).
    Shared(MatRef<'a>),
    /// Batch item `i` uses `factors[i]`; the slice length must equal the
    /// batch size.
    Each(&'a [MatRef<'a>]),
}

impl<'a> BatchOperand<'a> {
    /// The factor for batch item `i`.
    fn get(&self, i: usize) -> MatRef<'a> {
        match self {
            BatchOperand::Shared(m) => *m,
            BatchOperand::Each(ms) => ms[i],
        }
    }

    fn is_shared(&self) -> bool {
        matches!(self, BatchOperand::Shared(_))
    }
}

/// `C_i := alpha·op(A_i)·op(B_i) + beta·C_i` for every item of a
/// uniform-shape batch.
///
/// All products must share one `(m, k, n)` shape (leading dimensions may
/// differ per item). See the module docs for the overheads this amortizes
/// versus a loop of [`crate::gemm_op`] calls; results are bitwise equal
/// to that loop.
///
/// ```
/// use fsi_dense::{gemm_batched, mul, test_matrix, BatchOperand, Matrix, Op};
/// use fsi_runtime::Par;
///
/// // Ten independent 32×32 products sharing one right-hand factor.
/// let b = test_matrix(32, 32, 99);
/// let a: Vec<Matrix> = (0..10u64).map(|i| test_matrix(32, 32, i)).collect();
/// let a_refs: Vec<_> = a.iter().map(|m| m.as_ref()).collect();
/// let mut out: Vec<Matrix> = (0..10).map(|_| Matrix::zeros(32, 32)).collect();
/// let mut c: Vec<_> = out.iter_mut().map(|m| m.as_mut()).collect();
///
/// gemm_batched(
///     Par::Seq,
///     1.0,
///     Op::NoTrans,
///     BatchOperand::Each(&a_refs),
///     Op::NoTrans,
///     BatchOperand::Shared(b.as_ref()),
///     0.0,
///     &mut c,
/// );
///
/// drop(c);
/// for (ai, ci) in a.iter().zip(&out) {
///     assert_eq!(ci, &mul(ai, &b)); // bitwise equal to the looped path
/// }
/// ```
///
/// # Panics
/// Panics on shape disagreement within the batch or an
/// [`BatchOperand::Each`] slice whose length differs from `c.len()`.
#[allow(clippy::too_many_arguments)] // mirrors dgemm_batch's argument list
pub fn gemm_batched(
    par: Par<'_>,
    alpha: f64,
    opa: Op,
    a: BatchOperand<'_>,
    opb: Op,
    b: BatchOperand<'_>,
    beta: f64,
    c: &mut [MatMut<'_>],
) {
    let batch = c.len();
    if batch == 0 {
        return;
    }
    if let BatchOperand::Each(ms) = a {
        assert_eq!(ms.len(), batch, "gemm_batched: A slice length != batch");
    }
    if let BatchOperand::Each(ms) = b {
        assert_eq!(ms.len(), batch, "gemm_batched: B slice length != batch");
    }
    let m = opa.rows(a.get(0));
    let k = opa.cols(a.get(0));
    let n = opb.cols(b.get(0));
    for (i, ci) in c.iter().enumerate() {
        assert_eq!(opa.rows(a.get(i)), m, "gemm_batched: A shape varies");
        assert_eq!(opa.cols(a.get(i)), k, "gemm_batched: A shape varies");
        assert_eq!(opb.rows(b.get(i)), k, "gemm_batched: inner dims disagree");
        assert_eq!(opb.cols(b.get(i)), n, "gemm_batched: B shape varies");
        assert_eq!(ci.rows(), m, "gemm_batched: C row count mismatch");
        assert_eq!(ci.cols(), n, "gemm_batched: C column count mismatch");
    }
    if m == 0 || n == 0 {
        return;
    }

    // beta pre-pass, mirroring `gemm_op`: beta = 0 becomes store-mode
    // writeback (no fill pass), other betas scale in place up front.
    let store = beta == 0.0;
    if !store && beta != 1.0 {
        for ci in c.iter_mut() {
            ci.rb_mut().scale(beta);
        }
    }
    if k == 0 || alpha == 0.0 {
        if store {
            for ci in c.iter_mut() {
                ci.rb_mut().fill(0.0);
            }
        }
        return;
    }

    // One accounting block for the whole batch: the per-item route would
    // pay a span + meter + two clock reads per product, which at N ≤ 64
    // rivals the product itself.
    static BATCH_METER: fsi_runtime::metrics::Meter =
        fsi_runtime::metrics::Meter::new("dense.gemm_batched");
    static BATCH_HIST: fsi_runtime::metrics::LazyHistogram =
        fsi_runtime::metrics::LazyHistogram::new("dense.gemm_batched.batch");
    let _kernel = fsi_runtime::trace::kernel_span("gemm_batched");
    let total = flops::counts::gemm(m, n, k) * batch as u64;
    flops::add_flops(total);
    fsi_runtime::trace::charge_bytes(8 * ((m * k + k * n + 2 * m * n) * batch) as u64);
    BATCH_HIST.record(batch as u64);
    let _meter = if total >= crate::gemm::TIMED_METER_MIN {
        Some(BATCH_METER.start(total))
    } else {
        BATCH_METER.observe(total);
        None
    };

    // Resolve the kernel tier once on the calling thread so a
    // `with_tier` override covers pool workers too.
    let kt = kernel::active();
    let small = m <= MC && n <= MC && k <= KC;
    let threads = par.threads().max(1).min(batch);
    if threads <= 1 {
        run_chunk(kt, alpha, opa, a, opb, b, c, 0, store, small, (m, n, k));
        return;
    }
    let pool = par.pool().expect("threads > 1 implies pool");
    let chunk = batch.div_ceil(threads);
    pool.scope(|s| {
        for (t, cc) in c.chunks_mut(chunk).enumerate() {
            let off = t * chunk;
            s.spawn(move || run_chunk(kt, alpha, opa, a, opb, b, cc, off, store, small, (m, n, k)));
        }
    });
}

/// Streams one contiguous chunk of the batch through the chosen path:
/// general engine (large shapes), direct no-pack kernels (`NN` small
/// shapes), or pack-once macro loop (transposed small shapes).
#[allow(clippy::too_many_arguments)]
fn run_chunk(
    kt: &KernelTier,
    alpha: f64,
    opa: Op,
    a: BatchOperand<'_>,
    opb: Op,
    b: BatchOperand<'_>,
    c: &mut [MatMut<'_>],
    off: usize,
    store: bool,
    small: bool,
    (m, n, k): (usize, usize, usize),
) {
    if !small {
        // Large shapes: the blocked engine's cache hierarchy wins; run it
        // per item (accounting already charged at batch level). beta was
        // pre-applied, so the residual is 0 (store) or 1.
        let beta = if store { 0.0 } else { 1.0 };
        for (i, ci) in c.iter_mut().enumerate() {
            gemm_op_uncounted(
                Par::Seq,
                alpha,
                opa,
                a.get(off + i),
                opb,
                b.get(off + i),
                beta,
                ci.rb_mut(),
            );
        }
        return;
    }
    if opa == Op::NoTrans && opb == Op::NoTrans {
        // The hot shape: read both operands in place, no packing, no
        // workspace borrow, store-mode writeback.
        for (i, ci) in c.iter_mut().enumerate() {
            small_nn(kt, k, alpha, a.get(off + i), b.get(off + i), ci, store);
        }
        return;
    }
    // Transposed small shapes: pack through the workspace pool (one borrow
    // per chunk, not per product) and reuse a shared operand's panels
    // across the whole chunk.
    let a_len = m.div_ceil(kt.mr) * kt.mr * k;
    let b_len = n.div_ceil(kt.nr) * kt.nr * k;
    workspace::with_scratch2(a_len, b_len, |apack, bpack| {
        let mut a_ready = false;
        let mut b_ready = false;
        for (i, ci) in c.iter_mut().enumerate() {
            if !a_ready {
                pack_a(opa, a.get(off + i), 0, 0, m, k, kt.mr, apack);
                a_ready = a.is_shared();
            }
            if !b_ready {
                pack_b(opb, b.get(off + i), 0, 0, k, n, kt.nr, bpack);
                b_ready = b.is_shared();
            }
            small_packed(kt, (m, n, k), alpha, apack, bpack, ci, store);
        }
    });
}

/// One small `NoTrans·NoTrans` product through the tier's direct
/// (no-pack) driver, which walks register tiles straight over the
/// column-major operands.
fn small_nn(
    kt: &KernelTier,
    k: usize,
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    c: &mut MatMut<'_>,
    store: bool,
) {
    let m = c.rows();
    let n = c.cols();
    let (lda, ldb, ldc) = (a.ld(), b.ld(), c.ld());
    // SAFETY: A is m×k at stride lda, B is k×n at stride ldb (NoTrans by
    // this path's eligibility), and C is an exclusive m×n view at stride
    // ldc — exactly the driver's contract. The driver masks dead lanes of
    // partial tiles.
    unsafe {
        (kt.driver)(
            m,
            n,
            k,
            alpha,
            a.as_ptr(),
            lda,
            b.as_ptr(),
            ldb,
            c.as_mut_ptr(),
            ldc,
            store,
        );
    }
}

/// One small product over pre-packed panels: the bare macro loop of the
/// general engine, without its MC/KC/NC blocking (the whole problem is
/// one block by the small-path bound).
fn small_packed(
    kt: &KernelTier,
    (m, n, k): (usize, usize, usize),
    alpha: f64,
    apack: &[f64],
    bpack: &[f64],
    c: &mut MatMut<'_>,
    store: bool,
) {
    let ldc = c.ld();
    let cp = c.as_mut_ptr();
    let micro = kt.micro;
    let mut jr = 0;
    while jr < n {
        let n_eff = kt.nr.min(n - jr);
        let bpanel = bpack[(jr / kt.nr) * (k * kt.nr)..].as_ptr();
        let mut ir = 0;
        while ir < m {
            let m_eff = kt.mr.min(m - ir);
            let apanel = apack[(ir / kt.mr) * (k * kt.mr)..].as_ptr();
            // SAFETY: panels hold k·mr / k·nr packed values by
            // construction; the C corner is inside this exclusive view.
            unsafe {
                micro(
                    k,
                    alpha,
                    apanel,
                    bpanel,
                    cp.add(ir + jr * ldc),
                    ldc,
                    m_eff,
                    n_eff,
                    store,
                );
            }
            ir += kt.mr;
        }
        jr += kt.nr;
    }
}

/// Whether every product in a left-to-right chain fits the small fast
/// path: the running product keeps `factors[0].rows()` rows, so the chain
/// is small iff that height and every later factor's shape are within the
/// single-block bounds.
pub(crate) fn chain_is_small(factors: &[&Matrix]) -> bool {
    let m = factors[0].rows();
    m <= MC
        && factors[1..]
            .iter()
            .all(|f| f.rows() <= KC && f.cols() <= MC)
}

/// [`crate::chain_mul`]'s small-chain fast path: the same ping-pong
/// product sequence, but each product runs the direct no-pack kernel in
/// store mode — zero workspace borrows and no C fill passes across the
/// whole chain — with per-product flop attribution identical to the
/// general path (each product charges through [`gemm_count`]).
pub(crate) fn chain_mul_small(factors: &[&Matrix]) -> Matrix {
    let kt = kernel::active();
    let (first, rest) = factors.split_first().expect("chain_mul needs a factor");
    let mut acc = (*first).clone();
    let mut spare: Option<Matrix> = None;
    for f in rest {
        let (m, k, n) = (acc.rows(), f.rows(), f.cols());
        assert_eq!(acc.cols(), k, "chain_mul: inner dimensions disagree");
        let mut out = match spare.take() {
            // Stale contents are fine: store mode overwrites every element.
            Some(s) if s.rows() == m && s.cols() == n => s,
            _ => Matrix::zeros(m, n),
        };
        if m > 0 && n > 0 {
            if k > 0 {
                let _count = gemm_count(m, n, k);
                small_nn(
                    kt,
                    k,
                    1.0,
                    acc.as_ref(),
                    f.as_ref(),
                    &mut out.as_mut(),
                    true,
                );
            } else {
                out.as_mut().fill(0.0);
            }
        }
        spare = Some(std::mem::replace(&mut acc, out));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{chain_mul, mul, test_matrix};

    #[test]
    fn shared_matches_each_bitwise() {
        let b = test_matrix(13, 13, 3);
        let a: Vec<Matrix> = (0..5u64).map(|i| test_matrix(13, 13, 10 + i)).collect();
        let ar: Vec<_> = a.iter().map(|m| m.as_ref()).collect();
        let br: Vec<_> = (0..5).map(|_| b.as_ref()).collect();
        let mut out1: Vec<Matrix> = (0..5).map(|_| Matrix::zeros(13, 13)).collect();
        let mut out2 = out1.clone();
        let mut c1: Vec<_> = out1.iter_mut().map(|m| m.as_mut()).collect();
        gemm_batched(
            Par::Seq,
            1.0,
            Op::NoTrans,
            BatchOperand::Each(&ar),
            Op::NoTrans,
            BatchOperand::Shared(b.as_ref()),
            0.0,
            &mut c1,
        );
        let mut c2: Vec<_> = out2.iter_mut().map(|m| m.as_mut()).collect();
        gemm_batched(
            Par::Seq,
            1.0,
            Op::NoTrans,
            BatchOperand::Each(&ar),
            Op::NoTrans,
            BatchOperand::Each(&br),
            0.0,
            &mut c2,
        );
        drop((c1, c2));
        assert_eq!(out1, out2);
        for (ai, ci) in a.iter().zip(&out1) {
            assert_eq!(ci, &mul(ai, &b));
        }
    }

    #[test]
    fn empty_batch_and_zero_dims_are_noops() {
        let mut none: Vec<MatMut<'_>> = Vec::new();
        gemm_batched(
            Par::Seq,
            1.0,
            Op::NoTrans,
            BatchOperand::Each(&[]),
            Op::NoTrans,
            BatchOperand::Each(&[]),
            0.0,
            &mut none,
        );
        // k == 0, beta == 0: outputs must be zero-filled like gemm's.
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 3);
        let mut out = Matrix::from_fn(3, 3, |_, _| 2.0);
        let mut c = vec![out.as_mut()];
        gemm_batched(
            Par::Seq,
            1.0,
            Op::NoTrans,
            BatchOperand::Shared(a.as_ref()),
            Op::NoTrans,
            BatchOperand::Shared(b.as_ref()),
            0.0,
            &mut c,
        );
        drop(c);
        assert_eq!(out[(1, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "A slice length")]
    fn wrong_each_length_panics() {
        let a = test_matrix(4, 4, 1);
        let mut out1 = Matrix::zeros(4, 4);
        let mut out2 = Matrix::zeros(4, 4);
        let mut c = vec![out1.as_mut(), out2.as_mut()];
        // One A for a two-item batch.
        let ar = [a.as_ref()];
        gemm_batched(
            Par::Seq,
            1.0,
            Op::NoTrans,
            BatchOperand::Each(&ar),
            Op::NoTrans,
            BatchOperand::Shared(a.as_ref()),
            0.0,
            &mut c,
        );
    }

    #[test]
    fn chain_fast_path_matches_general() {
        // Small square chain: eligible for the fast path.
        let fs: Vec<Matrix> = (0..4u64).map(|i| test_matrix(24, 24, 60 + i)).collect();
        let refs: Vec<&Matrix> = fs.iter().collect();
        assert!(chain_is_small(&refs));
        let fast = chain_mul(Par::Seq, &refs);
        let slow = mul(&mul(&mul(&fs[0], &fs[1]), &fs[2]), &fs[3]);
        assert_eq!(fast, slow, "fast chain path must stay bitwise identical");
        // A chain with a large factor is not eligible.
        let big = test_matrix(24, 2 * MC, 99);
        let tail = test_matrix(2 * MC, 24, 98);
        assert!(!chain_is_small(&[&fs[0], &big, &tail]));
    }
}
