//! Error type for the dense kernels.
//!
//! Dimension mismatches are programming errors and panic (BLAS `XERBLA`
//! style); data-dependent failures — singular pivots — are reported through
//! [`DenseError`] so callers like the DQMC stabilizer can react.

use std::fmt;

use fsi_runtime::health::{FsiError, HealthEvent, Stage};

/// Result alias for dense operations.
pub type Result<T> = std::result::Result<T, DenseError>;

/// Data-dependent failure of a dense factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenseError {
    /// An exactly zero pivot was encountered during LU elimination at the
    /// given column: the matrix is singular to working precision.
    Singular {
        /// Column index of the failed pivot.
        column: usize,
    },
    /// An iterative routine did not converge within its budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl DenseError {
    /// Lifts a dense failure into the pipeline-level [`FsiError`],
    /// attributing it to the stage whose kernel call failed. Singular
    /// pivots become [`HealthEvent::SingularPivot`] (recorded as a
    /// `health.*` trace span); iteration-cap failures map to
    /// [`FsiError::NoConvergence`].
    pub fn at(self, stage: Stage) -> FsiError {
        match self {
            DenseError::Singular { column } => {
                let event = HealthEvent::SingularPivot { stage, column };
                event.record();
                FsiError::Health(event)
            }
            DenseError::NoConvergence { iterations } => {
                FsiError::NoConvergence { stage, iterations }
            }
        }
    }
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::Singular { column } => {
                write!(f, "matrix is singular (zero pivot at column {column})")
            }
            DenseError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for DenseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DenseError::Singular { column: 3 };
        assert!(e.to_string().contains("column 3"));
        let e = DenseError::NoConvergence { iterations: 9 };
        assert!(e.to_string().contains("9 iterations"));
    }
}
