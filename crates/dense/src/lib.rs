//! # fsi-dense — dense linear algebra substrate (mini BLAS/LAPACK)
//!
//! The FSI paper builds on Intel MKL's DGEMM / DGETRF / DGETRI / DGEQRF /
//! DORMQR. Rust's BLAS bindings are thin and tie the build to system
//! libraries, so this crate implements the needed kernel set from scratch
//! (the substitution is documented in DESIGN.md):
//!
//! * [`matrix`] — column-major [`Matrix`] storage plus [`MatRef`]/[`MatMut`]
//!   views with explicit leading dimension, including the disjoint splits
//!   the parallel kernels hand to pool workers;
//! * [`blas`] — level-1/2 kernels (dot, axpy, nrm2, gemv, ger);
//! * [`gemm`](mod@gemm) — cache-blocked, thread-parallel matrix multiply with
//!   transpose variants, the flop workhorse of FSI;
//! * [`kernel`] — the register-tile micro-kernels (AVX-512 16×4, AVX2
//!   8×4, portable scalar) and their runtime tier dispatch
//!   (`FSI_KERNEL` env override, silent degradation);
//! * [`batch`] — [`gemm_batched`], the batched-strided small-matrix
//!   engine for the CLS/multi-driver hot shape (shared operands packed
//!   once, no-pack direct path, store-mode writeback);
//! * [`lu`] — blocked LU with partial pivoting, solves (including the
//!   right-inverse applications the wrapping stage needs), explicit
//!   inversion and determinants;
//! * [`qr`] — Householder QR with compact-WY blocked application of `Q`,
//!   the engine of BSOFI;
//! * [`tri`] — triangular solves and upper-triangular inversion;
//! * [`expm`](mod@expm) — Padé-13 scaling-and-squaring matrix exponential for the
//!   Hubbard hopping factor `e^{tΔτK}`;
//! * [`norms`] — norms, relative-error metrics and a condition-number probe.
//!
//! Every kernel charges its textbook flop count to
//! [`fsi_runtime::flops`], so harnesses report Gflop/s rates comparable in
//! shape to the paper's MKL numbers.

#![warn(missing_docs)]
// index loops mirror the BLAS/LAPACK algorithms they implement.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod blas;
pub mod cond;
pub mod error;
pub mod expm;
pub mod gemm;
pub mod kernel;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod qr;
pub mod tri;

pub use batch::{gemm_batched, BatchOperand};
pub use cond::{cond1_estimate, norm1_inv_estimate, norm1_inv_estimate_detailed, Norm1Estimate};
pub use error::{DenseError, Result};
pub use expm::{expm, expm_diag, expm_par, scale_cols_exp, scale_rows_exp};
pub use gemm::{chain_mul, gemm, gemm_op, mul, mul_par, test_matrix, Op};
pub use kernel::{active_tier, available_tiers, set_default_tier, with_tier, Tier};
pub use lu::{getrf, getrf_par, inverse, inverse_par, solve, LuFactor};
pub use matrix::{MatMut, MatRef, Matrix};
pub use norms::{cond1, frobenius, norm1, norm_inf, rel_error};
pub use qr::{geqrf, QrFactor, Side};
