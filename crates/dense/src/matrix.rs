//! Column-major dense matrix storage and borrowed views.
//!
//! [`Matrix`] owns its data; [`MatRef`]/[`MatMut`] are lightweight views with
//! an explicit leading dimension (`ld`), exactly like the `(pointer, lda)`
//! convention of BLAS/LAPACK. Views allow the blocked factorization kernels
//! to operate in place on submatrices, and `MatMut::split_*` provides the
//! disjoint mutable partitions the parallel kernels hand to pool workers.
//!
//! # Safety architecture
//!
//! `MatMut` internally stores a raw pointer (a `&mut`-derived provenance)
//! because a row-split of a column-major matrix is *not* a contiguous slice
//! split: the two halves interleave in memory while touching disjoint
//! elements. All unsafe code in this crate lives in this module and in the
//! packed GEMM micro-kernel; every view method documents the invariant it
//! relies on:
//!
//! 1. a `MatMut` is only created from an exclusive borrow (or from a
//!    disjoint split of another `MatMut`), and
//! 2. two views produced by a `split_*` call address disjoint element sets
//!    `{ (i, j) : base + i + j·ld }`, which is guaranteed by the split
//!    arithmetic (`i` ranges partitioned for row splits, `j` ranges for
//!    column splits, with a shared `ld ≥ rows_total`).

use std::fmt;
use std::marker::PhantomData;

/// Owned, heap-allocated, column-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { data, rows, cols }
    }

    /// Creates a matrix from a column-major data vector.
    ///
    /// # Panics
    /// Panics unless `data.len() == rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "column-major length mismatch");
        Matrix { data, rows, cols }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            ptr: self.data.as_ptr(),
            rows: self.rows,
            cols: self.cols,
            ld: self.rows,
            _marker: PhantomData,
        }
    }

    /// Mutable view of the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_> {
        MatMut {
            ptr: self.data.as_mut_ptr(),
            rows: self.rows,
            cols: self.cols,
            ld: self.rows,
            _marker: PhantomData,
        }
    }

    /// Immutable view of the block starting at `(i, j)` with shape
    /// `nr × nc`.
    pub fn view(&self, i: usize, j: usize, nr: usize, nc: usize) -> MatRef<'_> {
        self.as_ref().submatrix(i, j, nr, nc)
    }

    /// Mutable view of the block starting at `(i, j)` with shape `nr × nc`.
    pub fn view_mut(&mut self, i: usize, j: usize, nr: usize, nc: usize) -> MatMut<'_> {
        self.as_mut().submatrix(i, j, nr, nc)
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Copies block `src` into this matrix at offset `(i, j)`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, i: usize, j: usize, src: MatRef<'_>) {
        self.view_mut(i, j, src.rows(), src.cols()).copy_from(src);
    }

    /// Extracts the block at `(i, j)` with shape `nr × nc` into a new owned
    /// matrix.
    pub fn block(&self, i: usize, j: usize, nr: usize, nc: usize) -> Matrix {
        self.view(i, j, nr, nc).to_owned()
    }

    /// In-place scale: `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// In-place sum: `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place difference: `self -= other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Adds `alpha` to every diagonal entry (`self += alpha·I`).
    pub fn add_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }

    /// Fills the matrix with zeros without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Overwrites with the identity (square matrices only).
    ///
    /// # Panics
    /// Panics if not square.
    pub fn set_identity(&mut self) {
        assert!(self.is_square(), "identity requires a square matrix");
        self.data.fill(0.0);
        for i in 0..self.rows {
            self[(i, i)] = 1.0;
        }
    }

    /// Maximum absolute entry (`max |a_ij|`), 0 for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(8);
        let show_c = self.cols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if show_c < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_r < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// Immutable column-major view: `(ptr, rows, cols, ld)`.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    ptr: *const f64,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a f64>,
}

// SAFETY: a MatRef is a shared view of f64 data with no interior mutability;
// sharing it across threads is as safe as sharing `&[f64]`.
unsafe impl Send for MatRef<'_> {}
unsafe impl Sync for MatRef<'_> {}

impl<'a> MatRef<'a> {
    /// Creates a view from a raw slice with an explicit leading dimension.
    ///
    /// # Panics
    /// Panics unless the addressed region fits in `data`.
    pub fn from_slice(data: &'a [f64], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension too small");
        if cols > 0 {
            assert!(
                (cols - 1) * ld + rows <= data.len(),
                "view exceeds backing slice"
            );
        }
        MatRef {
            ptr: data.as_ptr(),
            rows,
            cols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (stride between consecutive columns).
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element access.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "MatRef index out of range");
        // SAFETY: bounds just checked; the constructor guaranteed the
        // addressed region lies inside the backing allocation.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Unchecked element access for inner kernels.
    ///
    /// # Safety
    /// `i < rows` and `j < cols` must hold.
    #[inline]
    pub unsafe fn at_unchecked(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        *self.ptr.add(i + j * self.ld)
    }

    /// Raw base pointer of the view (element `(i, j)` lives at
    /// `ptr + i + j·ld`). For the no-pack small-N GEMM kernels, which read
    /// operand columns straight from the source through raw pointers.
    #[inline]
    pub fn as_ptr(&self) -> *const f64 {
        self.ptr
    }

    /// A column as a slice (columns are contiguous in column-major layout).
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        assert!(j < self.cols, "column index out of range");
        // SAFETY: the constructor guaranteed columns fit the backing slice.
        unsafe { std::slice::from_raw_parts(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Sub-view starting at `(i, j)` with shape `nr × nc`.
    pub fn submatrix(&self, i: usize, j: usize, nr: usize, nc: usize) -> MatRef<'a> {
        assert!(
            i + nr <= self.rows && j + nc <= self.cols,
            "submatrix out of range"
        );
        MatRef {
            // SAFETY: offset stays within the addressed region by the assert.
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            rows: nr,
            cols: nc,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Copies the view into a new owned matrix.
    pub fn to_owned(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            m.data[j * self.rows..(j + 1) * self.rows].copy_from_slice(self.col(j));
        }
        m
    }

    /// Frobenius norm of the viewed block.
    pub fn frobenius_norm(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.cols {
            for &x in self.col(j) {
                s += x * x;
            }
        }
        s.sqrt()
    }

    /// Maximum absolute entry of the viewed block.
    pub fn max_abs(&self) -> f64 {
        let mut m = 0.0f64;
        for j in 0..self.cols {
            for &x in self.col(j) {
                m = m.max(x.abs());
            }
        }
        m
    }
}

/// Mutable column-major view.
pub struct MatMut<'a> {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a mut f64>,
}

// SAFETY: a MatMut is an exclusive view (constructed from `&mut` data or a
// disjoint split of another MatMut); moving it to another thread is as safe
// as moving `&mut [f64]`.
unsafe impl Send for MatMut<'_> {}

impl<'a> MatMut<'a> {
    /// Creates a mutable view from a raw slice with an explicit leading
    /// dimension.
    ///
    /// # Panics
    /// Panics unless the addressed region fits in `data`.
    pub fn from_slice(data: &'a mut [f64], rows: usize, cols: usize, ld: usize) -> Self {
        assert!(ld >= rows.max(1), "leading dimension too small");
        if cols > 0 {
            assert!(
                (cols - 1) * ld + rows <= data.len(),
                "view exceeds backing slice"
            );
        }
        MatMut {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Reborrows as an immutable view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Reborrows as a shorter-lived mutable view (so a `MatMut` can be
    /// passed to helpers without being consumed).
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Element read.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.as_ref().at(i, j)
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "MatMut index out of range");
        // SAFETY: bounds checked; exclusivity is a type invariant.
        unsafe { *self.ptr.add(i + j * self.ld) = v }
    }

    /// Mutable reference to one element.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "MatMut index out of range");
        // SAFETY: bounds checked; exclusivity is a type invariant.
        unsafe { &mut *self.ptr.add(i + j * self.ld) }
    }

    /// Raw base pointer of the view (element `(i, j)` lives at
    /// `ptr + i + j·ld`). For the packed GEMM micro-kernel, which writes
    /// an `MR × NR` register tile through raw pointers.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f64 {
        self.ptr
    }

    /// A column as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column index out of range");
        // SAFETY: columns are contiguous and inside the addressed region.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Mutable sub-view starting at `(i, j)` with shape `nr × nc`.
    ///
    /// Consumes `self`; use [`MatMut::rb_mut`] first to keep the original.
    pub fn submatrix(self, i: usize, j: usize, nr: usize, nc: usize) -> MatMut<'a> {
        assert!(
            i + nr <= self.rows && j + nc <= self.cols,
            "submatrix out of range"
        );
        MatMut {
            // SAFETY: offset stays inside the addressed region by the assert.
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            rows: nr,
            cols: nc,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Splits into the columns `[0, j)` and `[j, cols)`.
    ///
    /// The two views address disjoint element sets (disjoint `j` ranges), so
    /// handing them to different threads is sound.
    pub fn split_at_col(self, j: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(j <= self.cols, "split column out of range");
        let left = MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: j,
            ld: self.ld,
            _marker: PhantomData,
        };
        let right = MatMut {
            // SAFETY: column offset within region.
            ptr: unsafe { self.ptr.add(j * self.ld) },
            rows: self.rows,
            cols: self.cols - j,
            ld: self.ld,
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Splits into the rows `[0, i)` and `[i, rows)`.
    ///
    /// The halves interleave in memory but address disjoint elements
    /// (disjoint `i` ranges under a common `ld`), so this is a sound
    /// exclusive partition.
    pub fn split_at_row(self, i: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(i <= self.rows, "split row out of range");
        let top = MatMut {
            ptr: self.ptr,
            rows: i,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        };
        let bottom = MatMut {
            // SAFETY: row offset within region.
            ptr: unsafe { self.ptr.add(i) },
            rows: self.rows - i,
            cols: self.cols,
            ld: self.ld,
            _marker: PhantomData,
        };
        (top, bottom)
    }

    /// Splits into `n` column panels of width `chunk` (last may be short),
    /// for distributing to pool workers.
    pub fn split_cols_chunks(self, chunk: usize) -> Vec<MatMut<'a>> {
        assert!(chunk > 0);
        let mut out = Vec::with_capacity(self.cols.div_ceil(chunk));
        let mut rest = self;
        while rest.cols() > chunk {
            let (head, tail) = rest.split_at_col(chunk);
            out.push(head);
            rest = tail;
        }
        out.push(rest);
        out
    }

    /// Splits into row panels of height `chunk` (last may be short).
    ///
    /// The row-split counterpart of [`MatMut::split_cols_chunks`]: the
    /// parallel GEMM driver tiles C over an M×N thread grid so tall-skinny
    /// outputs (BSOFI's 2N×N panels) still use every pool thread.
    pub fn split_rows_chunks(self, chunk: usize) -> Vec<MatMut<'a>> {
        assert!(chunk > 0);
        let mut out = Vec::with_capacity(self.rows.div_ceil(chunk));
        let mut rest = self;
        while rest.rows() > chunk {
            let (head, tail) = rest.split_at_row(chunk);
            out.push(head);
            rest = tail;
        }
        out.push(rest);
        out
    }

    /// Copies `src` into this view.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, src: MatRef<'_>) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows(), src.cols()),
            "copy_from shape mismatch"
        );
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Fills the view with a constant.
    pub fn fill(&mut self, v: f64) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Scales the view in place.
    pub fn scale(&mut self, alpha: f64) {
        for j in 0..self.cols {
            for x in self.col_mut(j) {
                *x *= alpha;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m[(2, 3)], 23.0);
        assert!(!m.is_square());
        let id = Matrix::identity(4);
        assert_eq!(id[(2, 2)], 1.0);
        assert_eq!(id[(2, 1)], 0.0);
        assert!(id.is_square());
    }

    #[test]
    fn col_major_layout() {
        let m = Matrix::from_col_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 0)], 2.0);
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "column-major length mismatch")]
    fn from_col_major_checks_length() {
        let _ = Matrix::from_col_major(2, 2, vec![1.0]);
    }

    #[test]
    fn views_and_submatrices() {
        let m = Matrix::from_fn(5, 5, |i, j| (i + 10 * j) as f64);
        let v = m.view(1, 2, 3, 2);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 2);
        assert_eq!(v.at(0, 0), m[(1, 2)]);
        assert_eq!(v.at(2, 1), m[(3, 3)]);
        let sub = v.submatrix(1, 1, 2, 1);
        assert_eq!(sub.at(0, 0), m[(2, 3)]);
        let owned = v.to_owned();
        assert_eq!(owned[(2, 1)], m[(3, 3)]);
    }

    #[test]
    fn view_mut_and_blocks() {
        let mut m = Matrix::zeros(4, 4);
        {
            let mut v = m.view_mut(1, 1, 2, 2);
            v.set(0, 0, 5.0);
            v.set(1, 1, 7.0);
            *v.at_mut(0, 1) = 9.0;
        }
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m[(2, 2)], 7.0);
        assert_eq!(m[(1, 2)], 9.0);
        let b = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        m.set_block(0, 2, b.as_ref());
        assert_eq!(m[(1, 3)], 2.0);
        assert_eq!(m.block(0, 2, 2, 2), b);
    }

    #[test]
    fn split_at_col_partitions() {
        let mut m = Matrix::zeros(3, 6);
        let (mut l, mut r) = m.as_mut().split_at_col(2);
        l.fill(1.0);
        r.fill(2.0);
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(2, 5)], 2.0);
    }

    #[test]
    fn split_at_row_partitions() {
        let mut m = Matrix::zeros(6, 3);
        let (mut t, mut b) = m.as_mut().split_at_row(4);
        t.fill(1.0);
        b.fill(2.0);
        assert_eq!(m[(3, 1)], 1.0);
        assert_eq!(m[(4, 1)], 2.0);
    }

    #[test]
    fn split_cols_chunks_covers_all() {
        let mut m = Matrix::zeros(2, 7);
        let chunks = m.as_mut().split_cols_chunks(3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].cols(), 3);
        assert_eq!(chunks[2].cols(), 1);
        let total: usize = chunks.iter().map(|c| c.cols()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn split_rows_chunks_covers_all() {
        let mut m = Matrix::zeros(7, 2);
        let mut chunks = m.as_mut().split_rows_chunks(3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].rows(), 3);
        assert_eq!(chunks[2].rows(), 1);
        let total: usize = chunks.iter().map(|c| c.rows()).sum();
        assert_eq!(total, 7);
        for (t, c) in chunks.iter_mut().enumerate() {
            c.fill(t as f64);
        }
        assert_eq!(m[(2, 0)], 0.0);
        assert_eq!(m[(3, 1)], 1.0);
        assert_eq!(m[(6, 0)], 2.0);
    }

    #[test]
    fn splits_are_thread_safe() {
        let mut m = Matrix::zeros(8, 8);
        let (l, r) = m.as_mut().split_at_col(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut l = l;
                l.fill(1.0);
            });
            s.spawn(move || {
                let mut r = r;
                r.fill(2.0);
            });
        });
        assert_eq!(m[(7, 3)], 1.0);
        assert_eq!(m[(0, 4)], 2.0);
    }

    #[test]
    fn arithmetic_helpers() {
        let mut a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(2, 2, |_, _| 1.0);
        a.add_assign(&b);
        assert_eq!(a[(1, 1)], 3.0);
        a.sub_assign(&b);
        assert_eq!(a[(1, 1)], 2.0);
        a.scale(2.0);
        assert_eq!(a[(0, 1)], 2.0);
        a.add_diag(1.0);
        assert_eq!(a[(0, 0)], 1.0);
        a.set_identity();
        assert_eq!(a, Matrix::identity(2));
        a.fill_zero();
        assert_eq!(a.max_abs(), 0.0);
    }

    #[test]
    fn transpose_and_diag() {
        let m = Matrix::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn from_slice_views_with_ld() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        // Interpret as a 2×3 view inside a 4-row buffer.
        let v = MatRef::from_slice(&data, 2, 3, 4);
        assert_eq!(v.at(0, 0), 0.0);
        assert_eq!(v.at(1, 2), 9.0);
        let mut data = data;
        let mut vm = MatMut::from_slice(&mut data, 2, 3, 4);
        vm.set(1, 2, -1.0);
        assert_eq!(data[9], -1.0);
    }

    #[test]
    #[should_panic(expected = "view exceeds backing slice")]
    fn from_slice_checks_extent() {
        let data = vec![0.0; 5];
        let _ = MatRef::from_slice(&data, 2, 3, 4);
    }

    #[test]
    fn frobenius_and_max_abs_on_views() {
        let m = Matrix::from_fn(3, 3, |i, j| if i == j { -2.0 } else { 0.0 });
        assert!((m.as_ref().frobenius_norm() - (12.0f64).sqrt()).abs() < 1e-15);
        assert_eq!(m.as_ref().max_abs(), 2.0);
        assert_eq!(m.max_abs(), 2.0);
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.len() < 2500, "debug output stays bounded: {}", s.len());
    }
}
