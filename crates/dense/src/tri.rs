//! Triangular kernels: solves (TRSM) and triangular inversion (TRTRI).
//!
//! Only the variants the factorizations need are implemented, each as a
//! clearly named function instead of a flag soup:
//!
//! * forward/back substitution against `L` (unit lower) and `U` (upper),
//!   plus their transposed forms — the building blocks of `getrs`;
//! * in-place inversion of an upper triangle — used by BSOFI's structured
//!   `R⁻¹` and by `getri`.
//!
//! All kernels access matrix columns contiguously (column-major layout), so
//! the inner loops are axpy/dot streams.

use crate::blas::{axpy, dot};
use crate::gemm::{gemm_op, gemm_op_uncounted, Op};
use crate::matrix::{MatMut, MatRef};
use fsi_runtime::{flops, workspace, Par};

/// Diagonal-block size of the blocked substitutions: each `TB × TB`
/// triangle is solved with the scalar kernel, and the off-diagonal
/// updates flow through GEMM (level-3), which is what keeps the wrapping
/// stage of FSI at DGEMM-like rates.
const TB: usize = 48;

/// Solves `L·X = B` in place (`B := L⁻¹B`) with `L` unit lower triangular.
///
/// # Panics
/// Panics unless `L` is square with side `B.rows()`.
pub fn solve_unit_lower(l: MatRef<'_>, mut b: MatMut<'_>) {
    let n = check_square(l, b.rows());
    let _kernel = fsi_runtime::trace::kernel_span("trsm");
    let nrhs = b.cols();
    let mut j0 = 0;
    while j0 < n {
        let tb = TB.min(n - j0);
        solve_unit_lower_unblocked(
            l.submatrix(j0, j0, tb, tb),
            b.rb_mut().submatrix(j0, 0, tb, nrhs),
        );
        if j0 + tb < n {
            // B[j0+tb.., :] −= L[j0+tb.., j0..j0+tb] · X[j0..j0+tb, :]
            let lower = l.submatrix(j0 + tb, j0, n - j0 - tb, tb);
            let (top, rest) = b.rb_mut().split_at_row(j0 + tb);
            let solved = top.as_ref().submatrix(j0, 0, tb, nrhs);
            gemm_raw(lower, solved, rest);
        }
        j0 += tb;
    }
}

fn solve_unit_lower_unblocked(l: MatRef<'_>, mut b: MatMut<'_>) {
    let n = l.rows();
    flops::add_flops(flops::counts::trsm(n, b.cols()));
    for c in 0..b.cols() {
        let col = b.col_mut(c);
        for j in 0..n {
            let bj = col[j];
            if bj != 0.0 {
                axpy(-bj, &l.col(j)[j + 1..], &mut col[j + 1..]);
            }
        }
    }
}

/// Solves `U·X = B` in place (`B := U⁻¹B`) with `U` upper triangular
/// (non-unit diagonal).
///
/// # Panics
/// Panics on shape mismatch or an exactly zero diagonal entry.
pub fn solve_upper(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = check_square(u, b.rows());
    let _kernel = fsi_runtime::trace::kernel_span("trsm");
    let nrhs = b.cols();
    // Walk the diagonal blocks bottom-up.
    let mut j1 = n;
    while j1 > 0 {
        let tb = TB.min(j1);
        let j0 = j1 - tb;
        solve_upper_unblocked(
            u.submatrix(j0, j0, tb, tb),
            b.rb_mut().submatrix(j0, 0, tb, nrhs),
        );
        if j0 > 0 {
            // B[..j0, :] −= U[..j0, j0..j1] · X[j0..j1, :]
            let upper = u.submatrix(0, j0, j0, tb);
            let (rest, bottom) = b.rb_mut().split_at_row(j0);
            let solved = bottom.as_ref().submatrix(0, 0, tb, nrhs);
            gemm_raw(upper, solved, rest);
        }
        j1 = j0;
    }
}

fn solve_upper_unblocked(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = u.rows();
    flops::add_flops(flops::counts::trsm(n, b.cols()));
    for c in 0..b.cols() {
        let col = b.col_mut(c);
        for j in (0..n).rev() {
            let ujj = u.at(j, j);
            assert!(ujj != 0.0, "singular upper triangle at {j}");
            let bj = col[j] / ujj;
            col[j] = bj;
            if bj != 0.0 {
                axpy(-bj, &u.col(j)[..j], &mut col[..j]);
            }
        }
    }
}

/// Solves `Lᵀ·X = B` in place with `L` unit lower triangular.
pub fn solve_unit_lower_trans(l: MatRef<'_>, mut b: MatMut<'_>) {
    let n = check_square(l, b.rows());
    let _kernel = fsi_runtime::trace::kernel_span("trsm");
    let nrhs = b.cols();
    // Lᵀ is upper triangular: walk the diagonal blocks bottom-up; the
    // off-diagonal update uses (Lᵀ)[..j0, j0..j1] = L[j0..j1, ..j0]ᵀ.
    let mut j1 = n;
    while j1 > 0 {
        let tb = TB.min(j1);
        let j0 = j1 - tb;
        solve_unit_lower_trans_unblocked(
            l.submatrix(j0, j0, tb, tb),
            b.rb_mut().submatrix(j0, 0, tb, nrhs),
        );
        if j0 > 0 {
            let left = l.submatrix(j0, 0, tb, j0);
            let (rest, bottom) = b.rb_mut().split_at_row(j0);
            let solved = bottom.as_ref().submatrix(0, 0, tb, nrhs);
            gemm_op(
                Par::Seq,
                -1.0,
                Op::Trans,
                left,
                Op::NoTrans,
                solved,
                1.0,
                rest,
            );
        }
        j1 = j0;
    }
}

fn solve_unit_lower_trans_unblocked(l: MatRef<'_>, mut b: MatMut<'_>) {
    let n = l.rows();
    flops::add_flops(flops::counts::trsm(n, b.cols()));
    for c in 0..b.cols() {
        let col = b.col_mut(c);
        for j in (0..n).rev() {
            col[j] -= dot(&l.col(j)[j + 1..], &col[j + 1..]);
        }
    }
}

/// Solves `Uᵀ·X = B` in place with `U` upper triangular (non-unit).
///
/// # Panics
/// Panics on shape mismatch or an exactly zero diagonal entry.
pub fn solve_upper_trans(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = check_square(u, b.rows());
    let _kernel = fsi_runtime::trace::kernel_span("trsm");
    let nrhs = b.cols();
    // Uᵀ is lower triangular: walk top-down; the off-diagonal update uses
    // (Uᵀ)[j1.., j0..j1] = U[j0..j1, j1..]ᵀ.
    let mut j0 = 0;
    while j0 < n {
        let tb = TB.min(n - j0);
        solve_upper_trans_unblocked(
            u.submatrix(j0, j0, tb, tb),
            b.rb_mut().submatrix(j0, 0, tb, nrhs),
        );
        if j0 + tb < n {
            let right = u.submatrix(j0, j0 + tb, tb, n - j0 - tb);
            let (top, rest) = b.rb_mut().split_at_row(j0 + tb);
            let solved = top.as_ref().submatrix(j0, 0, tb, nrhs);
            gemm_op(
                Par::Seq,
                -1.0,
                Op::Trans,
                right,
                Op::NoTrans,
                solved,
                1.0,
                rest,
            );
        }
        j0 += tb;
    }
}

fn solve_upper_trans_unblocked(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = u.rows();
    flops::add_flops(flops::counts::trsm(n, b.cols()));
    for c in 0..b.cols() {
        let col = b.col_mut(c);
        for j in 0..n {
            let ujj = u.at(j, j);
            assert!(ujj != 0.0, "singular upper triangle at {j}");
            col[j] = (col[j] - dot(&u.col(j)[..j], &col[..j])) / ujj;
        }
    }
}

/// Off-diagonal substitution update `C −= A·B` (GEMM accounts for its own
/// flops; together with the per-triangle charges the total matches the
/// textbook n²·nrhs).
fn gemm_raw(a: MatRef<'_>, b: MatRef<'_>, c: MatMut<'_>) {
    crate::gemm::gemm(Par::Seq, -1.0, a, b, 1.0, c);
}

/// Solves `X·U = B` in place (`B := B·U⁻¹`) with `U` upper triangular
/// (non-unit). Right-side solves keep the wrapping relation
/// `G(k,ℓ+1) = G(k,ℓ)·B⁻¹` transpose-free and GEMM-rich.
///
/// # Panics
/// Panics on shape mismatch or an exactly zero diagonal entry.
pub fn solve_upper_right(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = check_square(u, b.cols());
    let _kernel = fsi_runtime::trace::kernel_span("trsm");
    let nrhs = b.rows();
    // Column blocks left-to-right: solve X[:, j0..j1]·U[j0..j1, j0..j1] =
    // B[:, j0..j1] − X[:, ..j0]·U[..j0, j0..j1].
    let mut j0 = 0;
    while j0 < n {
        let tb = TB.min(n - j0);
        if j0 > 0 {
            let above = u.submatrix(0, j0, j0, tb);
            let (solved, rest) = b.rb_mut().split_at_col(j0);
            let target = rest.submatrix(0, 0, nrhs, tb);
            gemm_raw(solved.as_ref(), above, target);
        }
        solve_upper_right_unblocked(
            u.submatrix(j0, j0, tb, tb),
            b.rb_mut().submatrix(0, j0, nrhs, tb),
        );
        j0 += tb;
    }
}

fn solve_upper_right_unblocked(u: MatRef<'_>, mut b: MatMut<'_>) {
    let n = u.cols();
    flops::add_flops(flops::counts::trsm(n, b.rows()));
    for j in 0..n {
        let ujj = u.at(j, j);
        assert!(ujj != 0.0, "singular upper triangle at {j}");
        // X[:, j] = (B[:, j] − Σ_{p<j} X[:, p]·U[p, j]) / U[j, j]
        for p in 0..j {
            let upj = u.at(p, j);
            if upj != 0.0 {
                let (left, mut rest) = b.rb_mut().split_at_col(j);
                axpy(-upj, left.as_ref().col(p), rest.col_mut(0));
            }
        }
        let inv = 1.0 / ujj;
        for x in b.col_mut(j) {
            *x *= inv;
        }
    }
}

/// Solves `X·L = B` in place (`B := B·L⁻¹`) with `L` unit lower
/// triangular.
///
/// # Panics
/// Panics on shape mismatch.
pub fn solve_unit_lower_right(l: MatRef<'_>, mut b: MatMut<'_>) {
    let n = check_square(l, b.cols());
    let _kernel = fsi_runtime::trace::kernel_span("trsm");
    let nrhs = b.rows();
    // Column blocks right-to-left: X[:, j0..j1] = B[:, j0..j1] −
    // X[:, j1..]·L[j1.., j0..j1], then the diagonal triangle.
    let mut j1 = n;
    while j1 > 0 {
        let tb = TB.min(j1);
        let j0 = j1 - tb;
        if j1 < n {
            let below = l.submatrix(j1, j0, n - j1, tb);
            let (left, solved) = b.rb_mut().split_at_col(j1);
            let target = left.submatrix(0, j0, nrhs, tb);
            gemm_raw(solved.as_ref(), below, target);
        }
        solve_unit_lower_right_unblocked(
            l.submatrix(j0, j0, tb, tb),
            b.rb_mut().submatrix(0, j0, nrhs, tb),
        );
        j1 = j0;
    }
}

fn solve_unit_lower_right_unblocked(l: MatRef<'_>, mut b: MatMut<'_>) {
    let n = l.cols();
    flops::add_flops(flops::counts::trsm(n, b.rows()));
    // X[:, j] = B[:, j] − Σ_{p>j} X[:, p]·L[p, j], solved right-to-left.
    for j in (0..n).rev() {
        for p in j + 1..n {
            let lpj = l.at(p, j);
            if lpj != 0.0 {
                let (mut left, right) = b.rb_mut().split_at_col(p);
                let rows = left.rows();
                let mut target = left.rb_mut().submatrix(0, j, rows, 1);
                axpy(-lpj, right.as_ref().col(0), target.col_mut(0));
            }
        }
    }
}

/// In-place inversion of an upper triangle (entries below the diagonal are
/// ignored and left untouched).
///
/// Blocked column-sweep TRTRI: each `TB`-wide column block is computed as
/// `X[0..j0, jb] = −X_lead · U[0..j0, jb] · X_diag`, where `X_lead` is the
/// already-inverted leading triangle and `X_diag` the freshly inverted
/// diagonal block. The leading product is assembled block-row by block-row
/// (small dense trmm per diagonal block plus a GEMM accumulate), so almost
/// all of the O(n³/3) work flows through the packed GEMM engine. Internal
/// products use the uncounted entry point — the analytic `trtri` total is
/// charged once up front, exactly as before.
///
/// # Panics
/// Panics on an exactly zero diagonal entry.
pub fn invert_upper(mut u: MatMut<'_>) {
    let n = u.rows();
    assert_eq!(u.cols(), n, "invert_upper needs a square matrix");
    let _kernel = fsi_runtime::trace::kernel_span("trtri");
    flops::add_flops(flops::counts::trtri(n) * 2);
    if n <= TB {
        invert_upper_unblocked(u);
        return;
    }
    // W holds X_lead · U[0..j0, jb] (≤ n × TB); D is a dense, zero-lower
    // copy of the inverted diagonal block.
    workspace::with_scratch2(n * TB, TB * TB, |wbuf, dbuf| {
        let mut j0 = 0;
        while j0 < n {
            let tb = TB.min(n - j0);
            if j0 == 0 {
                invert_upper_unblocked(u.rb_mut().submatrix(0, 0, tb, tb));
                j0 += tb;
                continue;
            }
            // W[0..j0, :] := X[0..j0, 0..j0] · U[0..j0, jb], built one
            // block row at a time: the diagonal block of X is triangular
            // (trmm), the part right of it is dense (gemm).
            let mut w = MatMut::from_slice(&mut wbuf[..j0 * tb], j0, tb, j0);
            let mut i0 = 0;
            while i0 < j0 {
                let ib = TB.min(j0 - i0);
                trmm_upper_left(
                    u.as_ref().submatrix(i0, i0, ib, ib),
                    u.as_ref().submatrix(i0, j0, ib, tb),
                    w.rb_mut().submatrix(i0, 0, ib, tb),
                );
                if i0 + ib < j0 {
                    gemm_op_uncounted(
                        Par::Seq,
                        1.0,
                        Op::NoTrans,
                        u.as_ref().submatrix(i0, i0 + ib, ib, j0 - i0 - ib),
                        Op::NoTrans,
                        u.as_ref().submatrix(i0 + ib, j0, j0 - i0 - ib, tb),
                        1.0,
                        w.rb_mut().submatrix(i0, 0, ib, tb),
                    );
                }
                i0 += ib;
            }
            invert_upper_unblocked(u.rb_mut().submatrix(j0, j0, tb, tb));
            let mut d = MatMut::from_slice(&mut dbuf[..tb * tb], tb, tb, tb);
            for jj in 0..tb {
                for ii in 0..tb {
                    let v = if ii <= jj {
                        u.at(j0 + ii, j0 + jj)
                    } else {
                        0.0
                    };
                    d.set(ii, jj, v);
                }
            }
            // X[0..j0, jb] := −W · X_diag.
            gemm_op_uncounted(
                Par::Seq,
                -1.0,
                Op::NoTrans,
                w.as_ref(),
                Op::NoTrans,
                d.as_ref(),
                0.0,
                u.rb_mut().submatrix(0, j0, j0, tb),
            );
            j0 += tb;
        }
    });
}

/// Scalar column-oriented TRTRI on a diagonal block (flops are charged by
/// the blocked caller).
fn invert_upper_unblocked(mut u: MatMut<'_>) {
    let n = u.rows();
    // For each column j compute X[0..j, j] from the already-inverted
    // leading triangle.
    for j in 0..n {
        let ujj = u.at(j, j);
        assert!(ujj != 0.0, "singular upper triangle at {j}");
        let xjj = 1.0 / ujj;
        u.set(j, j, xjj);
        if j == 0 {
            continue;
        }
        // v := U[0..j, j] (original column), X[0..j, j] := −X[0..j,0..j]·v·xjj
        let v: Vec<f64> = (0..j).map(|i| u.at(i, j)).collect();
        for i in 0..j {
            // X[i, j] = −xjj · Σ_{p=i..j-1} X[i, p] v[p]
            let mut s = 0.0;
            for (p, vp) in v.iter().enumerate().skip(i) {
                s += u.at(i, p) * vp;
            }
            u.set(i, j, -xjj * s);
        }
    }
}

/// `out := triu(T)·B` for one inverted `≤ TB` diagonal block (dense
/// small-operand trmm; flops are part of the caller's analytic charge).
fn trmm_upper_left(t: MatRef<'_>, b: MatRef<'_>, mut out: MatMut<'_>) {
    let nb = t.rows();
    for c in 0..b.cols() {
        let bcol = b.col(c);
        let ocol = out.col_mut(c);
        for (i, oi) in ocol.iter_mut().enumerate() {
            let mut s = 0.0;
            for p in i..nb {
                s += t.at(i, p) * bcol[p];
            }
            *oi = s;
        }
    }
}

fn check_square(t: MatRef<'_>, rows: usize) -> usize {
    assert_eq!(t.rows(), t.cols(), "triangular factor must be square");
    assert_eq!(t.rows(), rows, "triangular side mismatch");
    t.rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{mul, test_matrix};
    use crate::matrix::Matrix;

    /// A well-conditioned random lower unit triangle.
    fn unit_lower(n: usize, seed: u64) -> Matrix {
        let r = test_matrix(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.3 * r[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// A well-conditioned random upper triangle.
    fn upper(n: usize, seed: u64) -> Matrix {
        let r = test_matrix(n, n, seed);
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.5 + r[(i, j)].abs()
            } else if i < j {
                0.3 * r[(i, j)]
            } else {
                0.0
            }
        })
    }

    fn residual(a: &Matrix, x: &Matrix, b: &Matrix) -> f64 {
        let mut r = mul(a, x);
        r.sub_assign(b);
        r.max_abs()
    }

    #[test]
    fn unit_lower_solve() {
        let l = unit_lower(20, 1);
        let b = test_matrix(20, 5, 2);
        let mut x = b.clone();
        solve_unit_lower(l.as_ref(), x.as_mut());
        assert!(residual(&l, &x, &b) < 1e-12);
    }

    #[test]
    fn upper_solve() {
        let u = upper(20, 3);
        let b = test_matrix(20, 5, 4);
        let mut x = b.clone();
        solve_upper(u.as_ref(), x.as_mut());
        assert!(residual(&u, &x, &b) < 1e-12);
    }

    #[test]
    fn unit_lower_trans_solve() {
        let l = unit_lower(15, 5);
        let b = test_matrix(15, 3, 6);
        let mut x = b.clone();
        solve_unit_lower_trans(l.as_ref(), x.as_mut());
        assert!(residual(&l.transpose(), &x, &b) < 1e-12);
    }

    #[test]
    fn upper_trans_solve() {
        let u = upper(15, 7);
        let b = test_matrix(15, 3, 8);
        let mut x = b.clone();
        solve_upper_trans(u.as_ref(), x.as_mut());
        assert!(residual(&u.transpose(), &x, &b) < 1e-12);
    }

    #[test]
    fn invert_upper_gives_inverse() {
        // 25 stays on the scalar path; 150 runs the blocked column sweep
        // over several TB-wide panels.
        for (n, seed) in [(25, 9), (150, 10)] {
            let u = upper(n, seed);
            let mut x = u.clone();
            invert_upper(x.as_mut());
            // Zero out the (ignored) strict lower part before multiplying.
            let x = Matrix::from_fn(n, n, |i, j| if i <= j { x[(i, j)] } else { 0.0 });
            let mut prod = mul(&u, &x);
            prod.add_diag(-1.0);
            assert!(
                prod.max_abs() < 1e-12,
                "U·U⁻¹ ≉ I at n={n}: {}",
                prod.max_abs()
            );
        }
    }

    #[test]
    fn invert_upper_leaves_lower_part_untouched() {
        let n = 130;
        let u = upper(n, 13);
        let mut full = test_matrix(n, n, 14);
        for j in 0..n {
            for i in 0..=j {
                full[(i, j)] = u[(i, j)];
            }
        }
        let below = Matrix::from_fn(n, n, |i, j| if i > j { full[(i, j)] } else { 0.0 });
        invert_upper(full.as_mut());
        for j in 0..n {
            for i in j + 1..n {
                assert_eq!(full[(i, j)], below[(i, j)], "lower ({i},{j}) changed");
            }
        }
    }

    #[test]
    fn invert_upper_identity_is_fixed_point() {
        let mut i3 = Matrix::identity(3);
        invert_upper(i3.as_mut());
        assert_eq!(i3, Matrix::identity(3));
    }

    #[test]
    #[should_panic(expected = "singular upper triangle")]
    fn singular_diagonal_panics() {
        let mut u = Matrix::identity(3);
        u[(1, 1)] = 0.0;
        let b = Matrix::zeros(3, 1);
        let mut x = b.clone();
        solve_upper(u.as_ref(), x.as_mut());
    }

    #[test]
    fn right_solves_give_small_residuals() {
        // X·U = B.
        let u = upper(70, 21);
        let b = test_matrix(5, 70, 22);
        let mut x = b.clone();
        solve_upper_right(u.as_ref(), x.as_mut());
        assert!(residual(&x, &u, &b) < 1e-11, "XU residual");
        // X·L = B with unit lower L.
        let l = unit_lower(70, 23);
        let mut x = b.clone();
        solve_unit_lower_right(l.as_ref(), x.as_mut());
        assert!(residual(&x, &l, &b) < 1e-11, "XL residual");
    }

    #[test]
    fn right_solve_matches_left_solve_of_transpose() {
        let u = upper(33, 24);
        let b = test_matrix(4, 33, 25);
        let mut x_right = b.clone();
        solve_upper_right(u.as_ref(), x_right.as_mut());
        // Xᵀ solves Uᵀ·Xᵀ = Bᵀ.
        let mut xt = b.transpose();
        solve_upper_trans(u.as_ref(), xt.as_mut());
        let x_want = xt.transpose();
        let mut d = x_right.clone();
        d.sub_assign(&x_want);
        assert!(d.max_abs() < 1e-12);
    }

    #[test]
    fn solves_on_views_with_ld() {
        // Solve on a sub-block of a larger buffer to exercise ld ≠ rows.
        let l = unit_lower(6, 11);
        let mut big = test_matrix(10, 8, 12);
        let b = big.block(2, 1, 6, 4);
        solve_unit_lower(l.as_ref(), big.view_mut(2, 1, 6, 4));
        let x = big.block(2, 1, 6, 4);
        assert!(residual(&l, &x, &b) < 1e-12);
    }
}
