//! LU factorization with partial pivoting (GETRF), solves (GETRS), and
//! explicit inversion (GETRI).
//!
//! The factorization is the right-looking blocked algorithm: factor an
//! `m × NB` panel with the unblocked kernel, apply its row interchanges to
//! the rest of the matrix, triangular-solve the block row, and GEMM-update
//! the trailing submatrix — so the bulk of the flops flow through the
//! level-3 kernel, as in LAPACK.
//!
//! In the reproduction these routines play two roles: they are the
//! "Intel MKL DGETRF/DGETRI" stand-in for the *full inversion baseline* the
//! paper validates against (§V-A), and they provide the `B_k⁻¹` applications
//! inside the wrapping stage (relations (4) and (7) multiply by an inverse,
//! which we realize as a reused factorization plus solves).

use crate::error::{DenseError, Result};
use crate::gemm::gemm;
use crate::matrix::{MatMut, Matrix};
use crate::tri;
use fsi_runtime::{flops, Par};

/// Panel width of the blocked factorization.
const NB: usize = 64;

/// An LU factorization `P·A = L·U` with partial pivoting.
///
/// `lu` packs the unit-lower `L` (below the diagonal) and `U` (upper
/// triangle); `piv[k]` is the row swapped with row `k` at step `k`
/// (0-based LAPACK `ipiv` convention).
#[derive(Debug)]
pub struct LuFactor {
    lu: Matrix,
    piv: Vec<usize>,
    /// Sign of the permutation (+1 or −1), tracked during pivoting.
    perm_sign: f64,
}

/// Factors a square matrix, consuming it.
///
/// Returns [`DenseError::Singular`] if an exactly zero pivot is found; the
/// factorization up to that column is still mathematically valid but the
/// factor object is not returned, because every downstream use in this
/// workspace requires a nonsingular matrix.
pub fn getrf(a: Matrix) -> Result<LuFactor> {
    getrf_par(Par::Seq, a)
}

/// Factors a square matrix using the given parallelism for the trailing
/// GEMM updates.
pub fn getrf_par(par: Par<'_>, mut a: Matrix) -> Result<LuFactor> {
    assert!(a.is_square(), "getrf expects a square matrix");
    let _kernel = fsi_runtime::trace::kernel_span("getrf");
    let n = a.rows();
    let mut piv = vec![0usize; n];
    let mut perm_sign = 1.0;
    // Flops of the panel work are counted by the leaf kernels below via the
    // analytic total; GEMM/TRSM count themselves. To keep totals equal to
    // the textbook 2n³/3 we count the panel part here as the difference.
    let mut j = 0;
    while j < n {
        let nb = NB.min(n - j);
        // Factor the panel A[j.., j..j+nb] (unblocked, with pivot search
        // over the full remaining column height).
        factor_panel(&mut a, j, nb, &mut piv[j..j + nb], &mut perm_sign)?;
        // Apply the panel's interchanges to the columns outside the panel.
        for (k, &p) in (j..j + nb).zip(piv[j..j + nb].iter()) {
            if p != k {
                swap_rows_outside(&mut a, k, p, j, nb);
            }
        }
        if j + nb < n {
            // Block row: U[j..j+nb, j+nb..] := L[panel]⁻¹ · A[j..j+nb, j+nb..]
            let (left, right) = a.as_mut().split_at_col(j + nb);
            let lpanel = left.as_ref().submatrix(j, j, nb, nb);
            let (_, mut urow) = right.split_at_row(j);
            let (mut urow, trailing_rows) = urow.rb_mut().split_at_row(nb);
            tri::solve_unit_lower(lpanel, urow.rb_mut());
            // Trailing update: A[j+nb.., j+nb..] −= L[j+nb.., j..j+nb]·U_row
            let l21 = left.as_ref().submatrix(j + nb, j, n - j - nb, nb);
            gemm(par, -1.0, l21, urow.as_ref(), 1.0, trailing_rows);
        }
        j += nb;
    }
    Ok(LuFactor {
        lu: a,
        piv,
        perm_sign,
    })
}

/// Unblocked panel factorization of `A[j.., j..j+nb]` with partial
/// pivoting; pivot rows are swapped across the *panel* columns only (the
/// caller swaps the rest).
fn factor_panel(
    a: &mut Matrix,
    j: usize,
    nb: usize,
    piv: &mut [usize],
    perm_sign: &mut f64,
) -> Result<()> {
    let n = a.rows();
    for k in 0..nb {
        let col = j + k;
        // Pivot search in A[col.., col].
        let mut p = col;
        let mut pmax = a[(col, col)].abs();
        for i in col + 1..n {
            let v = a[(i, col)].abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        piv[k] = p;
        if pmax == 0.0 {
            return Err(DenseError::Singular { column: col });
        }
        if p != col {
            *perm_sign = -*perm_sign;
            // Swap rows col and p inside the panel columns.
            for c in j..j + nb {
                let tmp = a[(col, c)];
                a[(col, c)] = a[(p, c)];
                a[(p, c)] = tmp;
            }
        }
        // Scale multipliers and rank-1 update of the remaining panel.
        let pivot = a[(col, col)];
        let inv = 1.0 / pivot;
        for i in col + 1..n {
            a[(i, col)] *= inv;
        }
        let remaining = (n - col - 1) as u64;
        let width = (j + nb - col - 1) as u64;
        flops::add_flops(remaining + 2 * remaining * width);
        for c in col + 1..j + nb {
            let u = a[(col, c)];
            if u != 0.0 {
                for i in col + 1..n {
                    let l = a[(i, col)];
                    a[(i, c)] -= l * u;
                }
            }
        }
    }
    Ok(())
}

/// Swaps rows `k` and `p` in all columns except the panel `[j, j+nb)`.
fn swap_rows_outside(a: &mut Matrix, k: usize, p: usize, j: usize, nb: usize) {
    let n = a.cols();
    for c in (0..j).chain(j + nb..n) {
        let tmp = a[(k, c)];
        a[(k, c)] = a[(p, c)];
        a[(p, c)] = tmp;
    }
}

impl LuFactor {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.lu.rows()
    }

    /// The packed LU factors (for inspection/testing).
    pub fn packed(&self) -> &Matrix {
        &self.lu
    }

    /// The pivot vector (`piv[k]` = row swapped with `k` at step `k`).
    pub fn pivots(&self) -> &[usize] {
        &self.piv
    }

    /// Applies the factorization to solve `A·X = B` in place.
    pub fn solve_in_place(&self, mut b: MatMut<'_>) {
        assert_eq!(b.rows(), self.n(), "solve: rhs row count mismatch");
        // x = U⁻¹ L⁻¹ P b
        for k in 0..self.n() {
            let p = self.piv[k];
            if p != k {
                for c in 0..b.cols() {
                    let col = b.col_mut(c);
                    col.swap(k, p);
                }
            }
        }
        tri::solve_unit_lower(self.lu.as_ref(), b.rb_mut());
        tri::solve_upper(self.lu.as_ref(), b);
    }

    /// Solves `A·X = B`, returning `X`.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        let mut x = b.clone();
        self.solve_in_place(x.as_mut());
        x
    }

    /// Applies the factorization to solve `Aᵀ·X = B` in place.
    ///
    /// With `P·A = L·U`: `Aᵀ x = b  ⇔  Uᵀ z = b, Lᵀ w = z, x = Pᵀ w`.
    pub fn solve_transpose_in_place(&self, mut b: MatMut<'_>) {
        assert_eq!(b.rows(), self.n(), "solve_t: rhs row count mismatch");
        tri::solve_upper_trans(self.lu.as_ref(), b.rb_mut());
        tri::solve_unit_lower_trans(self.lu.as_ref(), b.rb_mut());
        for k in (0..self.n()).rev() {
            let p = self.piv[k];
            if p != k {
                for c in 0..b.cols() {
                    let col = b.col_mut(c);
                    col.swap(k, p);
                }
            }
        }
    }

    /// Solves from the right in place: `B := B·A⁻¹` (i.e. solves
    /// `X·A = B`).
    ///
    /// With `P·A = L·U` (so `A = Pᵀ·L·U`): `X·Pᵀ·L·U = B` is solved by two
    /// right-side triangular solves followed by the column permutation
    /// `X = Y·P` — entirely transpose-free and GEMM-rich, which keeps the
    /// wrapping relation `G(k,ℓ+1) = G(k,ℓ)·B⁻¹` at level-3 speed.
    pub fn solve_right_in_place(&self, mut b: MatMut<'_>) {
        assert_eq!(b.cols(), self.n(), "solve_right: rhs column count mismatch");
        tri::solve_upper_right(self.lu.as_ref(), b.rb_mut());
        tri::solve_unit_lower_right(self.lu.as_ref(), b.rb_mut());
        // X = Y·P = Y·P_{n−1}⋯P_0: apply the column swaps in reverse.
        for k in (0..self.n()).rev() {
            let p = self.piv[k];
            if p != k {
                for r in 0..b.rows() {
                    let tmp = b.at(r, k);
                    let v = b.at(r, p);
                    b.set(r, k, v);
                    b.set(r, p, tmp);
                }
            }
        }
    }

    /// Solves from the right: returns `X = B·A⁻¹` (i.e. `X·A = B`).
    pub fn solve_right(&self, b: &Matrix) -> Matrix {
        let mut x = b.clone();
        self.solve_right_in_place(x.as_mut());
        x
    }

    /// Explicit inverse `A⁻¹` (GETRI-style, via solves against the
    /// identity).
    pub fn inverse(&self) -> Matrix {
        let _kernel = fsi_runtime::trace::kernel_span("getri");
        flops::add_flops(flops::counts::getri(self.n()));
        let mut x = Matrix::identity(self.n());
        self.solve_in_place(x.as_mut());
        x
    }

    /// Determinant from the LU factors.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.n() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// `(sign, log|det|)` — robust for the large matrices in the Metropolis
    /// ratio tests where `det` itself would over/underflow.
    pub fn sign_log_det(&self) -> (f64, f64) {
        let mut sign = self.perm_sign;
        let mut logdet = 0.0;
        for i in 0..self.n() {
            let d = self.lu[(i, i)];
            if d < 0.0 {
                sign = -sign;
            }
            logdet += d.abs().ln();
        }
        (sign, logdet)
    }
}

/// Convenience: solves `A·X = B` for square `A`.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    Ok(getrf(a.clone())?.solve(b))
}

/// Convenience: explicit inverse of a square matrix.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Ok(getrf(a.clone())?.inverse())
}

/// Convenience: explicit inverse with parallel trailing updates.
pub fn inverse_par(par: Par<'_>, a: &Matrix) -> Result<Matrix> {
    Ok(getrf_par(par, a.clone())?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{mul, test_matrix};
    use fsi_runtime::ThreadPool;

    /// Random diagonally-dominated matrix (guaranteed nonsingular).
    fn well_conditioned(n: usize, seed: u64) -> Matrix {
        let mut a = test_matrix(n, n, seed);
        a.add_diag(n as f64 * 0.5);
        a
    }

    #[test]
    fn reconstruction_pa_eq_lu() {
        for n in [1usize, 2, 5, 33, 70, 129] {
            let a = well_conditioned(n, n as u64);
            let f = getrf(a.clone()).expect("nonsingular");
            // Build P·A by applying pivots to a copy of A.
            let mut pa = a.clone();
            for k in 0..n {
                let p = f.pivots()[k];
                if p != k {
                    for c in 0..n {
                        let tmp = pa[(k, c)];
                        pa[(k, c)] = pa[(p, c)];
                        pa[(p, c)] = tmp;
                    }
                }
            }
            let lu = f.packed();
            let l = Matrix::from_fn(n, n, |i, j| {
                if i == j {
                    1.0
                } else if i > j {
                    lu[(i, j)]
                } else {
                    0.0
                }
            });
            let u = Matrix::from_fn(n, n, |i, j| if i <= j { lu[(i, j)] } else { 0.0 });
            let mut resid = mul(&l, &u);
            resid.sub_assign(&pa);
            assert!(
                resid.max_abs() < 1e-11 * (n as f64),
                "n={n}: |LU − PA| = {}",
                resid.max_abs()
            );
        }
    }

    #[test]
    fn solve_gives_small_residual() {
        let n = 80;
        let a = well_conditioned(n, 3);
        let b = test_matrix(n, 7, 4);
        let x = solve(&a, &b).unwrap();
        let mut r = mul(&a, &x);
        r.sub_assign(&b);
        assert!(r.max_abs() < 1e-10);
    }

    #[test]
    fn transpose_solve_gives_small_residual() {
        let n = 40;
        let a = well_conditioned(n, 5);
        let b = test_matrix(n, 3, 6);
        let f = getrf(a.clone()).unwrap();
        let mut x = b.clone();
        f.solve_transpose_in_place(x.as_mut());
        let mut r = mul(&a.transpose(), &x);
        r.sub_assign(&b);
        assert!(r.max_abs() < 1e-10);
    }

    #[test]
    fn solve_right_multiplies_by_inverse() {
        let n = 30;
        let a = well_conditioned(n, 7);
        let b = test_matrix(4, n, 8); // note: B is 4×n, X = B·A⁻¹ is 4×n
        let f = getrf(a.clone()).unwrap();
        let x = f.solve_right(&b);
        let mut r = mul(&x, &a);
        r.sub_assign(&b);
        assert!(r.max_abs() < 1e-10);
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 50;
        let a = well_conditioned(n, 9);
        let ainv = inverse(&a).unwrap();
        let mut prod = mul(&a, &ainv);
        prod.add_diag(-1.0);
        assert!(prod.max_abs() < 1e-10, "|A·A⁻¹ − I| = {}", prod.max_abs());
    }

    #[test]
    fn parallel_factorization_matches_sequential() {
        let pool = ThreadPool::new(4);
        let n = 160;
        let a = well_conditioned(n, 10);
        let f_seq = getrf(a.clone()).unwrap();
        let f_par = getrf_par(Par::Pool(&pool), a).unwrap();
        let mut d = f_seq.packed().clone();
        d.sub_assign(f_par.packed());
        assert_eq!(f_seq.pivots(), f_par.pivots());
        assert!(d.max_abs() < 1e-12);
    }

    #[test]
    fn determinant_matches_known_cases() {
        // 2×2 with known determinant.
        let a = Matrix::from_col_major(2, 2, vec![3.0, 1.0, 2.0, 4.0]); // [[3,2],[1,4]]
        let f = getrf(a).unwrap();
        assert!((f.det() - 10.0).abs() < 1e-12);
        let (sign, logdet) = f.sign_log_det();
        assert_eq!(sign, 1.0);
        assert!((logdet - 10.0f64.ln()).abs() < 1e-12);
        // Identity has det 1 regardless of size.
        let f = getrf(Matrix::identity(17)).unwrap();
        assert!((f.det() - 1.0).abs() < 1e-12);
        // A permutation flips the sign.
        let mut p = Matrix::identity(4);
        p[(0, 0)] = 0.0;
        p[(1, 1)] = 0.0;
        p[(0, 1)] = 1.0;
        p[(1, 0)] = 1.0;
        let f = getrf(p).unwrap();
        assert!((f.det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = Matrix::identity(5);
        a[(2, 2)] = 0.0;
        match getrf(a) {
            Err(DenseError::Singular { column }) => assert_eq!(column, 2),
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // [[0, 1], [1, 0]] is perfectly conditioned but needs a pivot swap.
        let a = Matrix::from_col_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let f = getrf(a.clone()).unwrap();
        let x = f.solve(&Matrix::from_col_major(2, 1, vec![2.0, 3.0]));
        assert!((x[(0, 0)] - 3.0).abs() < 1e-14);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-14);
        assert!((f.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn flop_accounting_is_close_to_textbook() {
        use fsi_runtime::trace;
        let n = 96;
        let a = well_conditioned(n, 11);
        let _lock = trace::test_lock();
        trace::set_level(fsi_runtime::TraceLevel::Stages);
        let span = trace::span("getrf-test");
        let _ = getrf(a).unwrap();
        let stats = span.finish();
        trace::set_level(fsi_runtime::TraceLevel::Off);
        trace::clear();
        let counted = stats.flops as f64;
        let textbook = flops::counts::getrf(n, n) as f64;
        let ratio = counted / textbook;
        assert!(
            (0.7..1.3).contains(&ratio),
            "counted {counted} vs textbook {textbook} (ratio {ratio})"
        );
    }
}
