//! Level-1 and level-2 BLAS kernels on slices and views.
//!
//! These are the scalar building blocks of the factorization kernels
//! (Householder generation and application, pivot search, panel updates).
//! The loops are written so LLVM auto-vectorizes them; there is no explicit
//! SIMD, keeping the crate portable.

use crate::matrix::{MatMut, MatRef};

/// Dot product `xᵀy`.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut s = 0.0;
    for (a, b) in x.iter().zip(y) {
        s += a * b;
    }
    s
}

/// `y += alpha·x`.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if alpha == 0.0 {
        return;
    }
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm with scaling to avoid overflow/underflow (LAPACK DNRM2
/// style).
pub fn nrm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let a = xi.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Index of the element with maximum absolute value (0 for empty input).
#[inline]
pub fn iamax(x: &[f64]) -> usize {
    let mut best = 0;
    let mut bv = 0.0f64;
    for (i, &xi) in x.iter().enumerate() {
        let a = xi.abs();
        if a > bv {
            bv = a;
            best = i;
        }
    }
    best
}

/// Matrix-vector product `y := alpha·A·x + beta·y`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemv(alpha: f64, a: MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.cols(), x.len(), "gemv: A.cols != x.len");
    assert_eq!(a.rows(), y.len(), "gemv: A.rows != y.len");
    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        scal(beta, y);
    }
    // Column-major: accumulate alpha·x_j times column j (axpy per column).
    for j in 0..a.cols() {
        axpy(alpha * x[j], a.col(j), y);
    }
    fsi_runtime::flops::add_flops(2 * a.rows() as u64 * a.cols() as u64);
}

/// Transposed matrix-vector product `y := alpha·Aᵀ·x + beta·y`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemv_t(alpha: f64, a: MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    gemv_t_uncounted(alpha, a, x, beta, y);
    fsi_runtime::flops::add_flops(2 * a.rows() as u64 * a.cols() as u64);
}

/// [`gemv_t`] without the flop charge — for use inside kernels (GEQRF,
/// ORMQR) that already charged their analytic total; charging the panel
/// products again would double-count.
pub(crate) fn gemv_t_uncounted(alpha: f64, a: MatRef<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: A.rows != x.len");
    assert_eq!(a.cols(), y.len(), "gemv_t: A.cols != y.len");
    for j in 0..a.cols() {
        let d = dot(a.col(j), x);
        y[j] = alpha * d + if beta == 0.0 { 0.0 } else { beta * y[j] };
    }
}

/// Rank-1 update `A += alpha·x·yᵀ`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: MatMut<'_>) {
    let flops = 2 * x.len() as u64 * y.len() as u64;
    ger_uncounted(alpha, x, y, a);
    fsi_runtime::flops::add_flops(flops);
}

/// [`ger`] without the flop charge (see [`gemv_t_uncounted`]).
pub(crate) fn ger_uncounted(alpha: f64, x: &[f64], y: &[f64], mut a: MatMut<'_>) {
    assert_eq!(a.rows(), x.len(), "ger: A.rows != x.len");
    assert_eq!(a.cols(), y.len(), "ger: A.cols != y.len");
    for j in 0..a.cols() {
        axpy(alpha * y[j], x, a.col_mut(j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn dot_axpy_scal() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn nrm2_is_robust_to_extremes() {
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
        // Would overflow with naive sum of squares.
        let big = 1e200;
        let n = nrm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-15);
        // Would underflow with naive sum of squares.
        let tiny = 1e-200;
        let n = nrm2(&[tiny, tiny]);
        assert!((n - tiny * std::f64::consts::SQRT_2).abs() / n < 1e-15);
    }

    #[test]
    fn iamax_finds_peak() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(iamax(&[]), 0);
        assert_eq!(iamax(&[0.0, 0.0]), 0);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j + 1) as f64); // [[1,2,3],[4,5,6]]
        let x = [1.0, 0.0, -1.0];
        let mut y = [10.0, 20.0];
        gemv(1.0, a.as_ref(), &x, 0.0, &mut y);
        assert_eq!(y, [-2.0, -2.0]);
        gemv(2.0, a.as_ref(), &x, 1.0, &mut y);
        assert_eq!(y, [-6.0, -6.0]);
    }

    #[test]
    fn gemv_t_matches_transpose() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + 2 * j) as f64);
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0, 0.0];
        gemv_t(1.0, a.as_ref(), &x, 0.0, &mut y1);
        let at = a.transpose();
        let mut y2 = [0.0, 0.0];
        gemv(1.0, at.as_ref(), &x, 0.0, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Matrix::zeros(2, 3);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0, 5.0], a.as_mut());
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 2)], 20.0);
    }
}
