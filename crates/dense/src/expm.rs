//! Matrix exponential via Padé-13 scaling and squaring (Higham 2005).
//!
//! The Hubbard-matrix blocks are `B_ℓ = e^{tΔτK}·e^{σν V_ℓ(h)}`: the second
//! factor is a diagonal exponential, but the first requires a genuine dense
//! `e^{A}` of the (scaled) lattice adjacency matrix. QUEST gets this from
//! LAPACK-backed kernels; we implement the standard scaling-and-squaring
//! algorithm with the degree-13 Padé approximant, the same method
//! `scipy.linalg.expm`/Expokit use in the well-scaled regime.
//!
//! The hopping matrices in DQMC have modest norms (`‖tΔτK‖₁ ≤ 4tΔτ ≲ 1` for
//! square lattices at the temperatures of interest), so the approximant is
//! operating far inside its accuracy envelope; scaling only engages for
//! stress-test inputs.

use crate::error::Result;
use crate::gemm::mul_par;
use crate::lu::getrf;
use crate::matrix::Matrix;
use crate::norms::norm1;
use fsi_runtime::Par;

/// Padé-13 numerator coefficients (Higham 2005, Table 2.3).
const B13: [f64; 14] = [
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
];

/// One-norm threshold below which the unscaled degree-13 approximant meets
/// double-precision accuracy.
const THETA13: f64 = 5.371920351148152;

/// Computes `e^A` for square `A`.
///
/// Returns [`crate::error::DenseError::Singular`] only in the pathological
/// case where the Padé denominator is numerically singular (it is provably
/// nonsingular for `‖A/2^s‖₁ ≤ θ₁₃`, so this indicates NaN/Inf input).
pub fn expm(a: &Matrix) -> Result<Matrix> {
    expm_par(Par::Seq, a)
}

/// [`expm`] with parallel internal products.
pub fn expm_par(par: Par<'_>, a: &Matrix) -> Result<Matrix> {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }
    let nrm = norm1(a);
    let s = if nrm > THETA13 {
        (nrm / THETA13).log2().ceil() as u32
    } else {
        0
    };
    let mut a_scaled = a.clone();
    if s > 0 {
        a_scaled.scale(0.5f64.powi(s as i32));
    }

    let a2 = mul_par(par, &a_scaled, &a_scaled);
    let a4 = mul_par(par, &a2, &a2);
    let a6 = mul_par(par, &a2, &a4);

    // U = A·(A6·(b13 A6 + b11 A4 + b9 A2) + b7 A6 + b5 A4 + b3 A2 + b1 I)
    let mut inner = lincomb(n, &[(B13[13], &a6), (B13[11], &a4), (B13[9], &a2)]);
    let mut u_poly = mul_par(par, &a6, &inner);
    accumulate(&mut u_poly, &[(B13[7], &a6), (B13[5], &a4), (B13[3], &a2)]);
    u_poly.add_diag(B13[1]);
    let u = mul_par(par, &a_scaled, &u_poly);

    // V = A6·(b12 A6 + b10 A4 + b8 A2) + b6 A6 + b4 A4 + b2 A2 + b0 I
    inner = lincomb(n, &[(B13[12], &a6), (B13[10], &a4), (B13[8], &a2)]);
    let mut v = mul_par(par, &a6, &inner);
    accumulate(&mut v, &[(B13[6], &a6), (B13[4], &a4), (B13[2], &a2)]);
    v.add_diag(B13[0]);

    // Solve (V − U)·X = (V + U).
    let mut vm = v.clone();
    vm.sub_assign(&u);
    let mut vp = v;
    vp.add_assign(&u);
    let f = getrf(vm)?;
    let mut x = f.solve(&vp);

    // Undo the scaling by repeated squaring.
    for _ in 0..s {
        x = mul_par(par, &x, &x);
    }
    Ok(x)
}

/// Builds `Σ cᵢ·Mᵢ` into a fresh matrix.
fn lincomb(n: usize, terms: &[(f64, &Matrix)]) -> Matrix {
    let mut out = Matrix::zeros(n, n);
    accumulate(&mut out, terms);
    out
}

/// `out += Σ cᵢ·Mᵢ`.
fn accumulate(out: &mut Matrix, terms: &[(f64, &Matrix)]) {
    for (c, m) in terms {
        let out_slice = out.as_mut_slice();
        for (o, x) in out_slice.iter_mut().zip(m.as_slice()) {
            *o += c * x;
        }
    }
}

/// Computes `e^{αD}` for a diagonal matrix given by its entries — the
/// `e^{σν V_ℓ(h)}` factor of a Hubbard block, which is exact and O(n).
pub fn expm_diag(alpha: f64, d: &[f64]) -> Matrix {
    let exps: Vec<f64> = d.iter().map(|&x| (alpha * x).exp()).collect();
    Matrix::diag(&exps)
}

/// Scales the columns of `A` in place by `e^{αdⱼ}` — i.e. `A := A·e^{αD}` —
/// avoiding the diagonal GEMM when building Hubbard blocks. Each `exp()` is
/// evaluated once per column (`n` transcendental calls total, not `n²`).
pub fn scale_cols_exp(a: &mut Matrix, alpha: f64, d: &[f64]) {
    assert_eq!(a.cols(), d.len(), "scale_cols_exp dimension mismatch");
    for (j, &dj) in d.iter().enumerate() {
        let f = (alpha * dj).exp();
        let mut col = a.view_mut(0, j, a.rows(), 1);
        col.scale(f);
    }
}

/// Scales the rows of `A` in place by `e^{αdᵢ}` — i.e. `A := e^{αD}·A`.
///
/// The `n` scale factors are precomputed once, so the cost is `n`
/// transcendental calls plus one multiply per element (the column-major
/// sweep keeps the inner loop contiguous).
pub fn scale_rows_exp(a: &mut Matrix, alpha: f64, d: &[f64]) {
    let rows = a.rows();
    assert_eq!(rows, d.len(), "scale_rows_exp dimension mismatch");
    let factors: Vec<f64> = d.iter().map(|&x| (alpha * x).exp()).collect();
    for col in a.as_mut_slice().chunks_exact_mut(rows) {
        for (x, f) in col.iter_mut().zip(&factors) {
            *x *= f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{mul, test_matrix};

    #[test]
    fn expm_of_zero_is_identity() {
        let e = expm(&Matrix::zeros(7, 7)).unwrap();
        let mut d = e;
        d.add_diag(-1.0);
        assert!(d.max_abs() < 1e-15);
    }

    #[test]
    fn expm_of_diagonal_matches_scalar_exp() {
        let d = Matrix::diag(&[0.5, -1.0, 2.0]);
        let e = expm(&d).unwrap();
        for (i, want) in [0.5f64, -1.0, 2.0].iter().map(|x| x.exp()).enumerate() {
            assert!((e[(i, i)] - want).abs() < 1e-13 * want.abs());
        }
        assert!(e[(0, 1)].abs() < 1e-14);
    }

    #[test]
    fn expm_matches_taylor_for_small_norm() {
        let mut a = test_matrix(10, 10, 3);
        a.scale(0.01);
        let e = expm(&a).unwrap();
        // High-order Taylor reference.
        let mut taylor = Matrix::identity(10);
        let mut term = Matrix::identity(10);
        for k in 1..=20 {
            term = mul(&term, &a);
            term.scale(1.0 / k as f64);
            taylor.add_assign(&term);
        }
        let err = crate::norms::rel_error(&e, &taylor);
        assert!(err < 1e-14, "taylor mismatch: {err}");
    }

    #[test]
    fn expm_inverse_property() {
        let mut a = test_matrix(12, 12, 4);
        a.scale(0.3);
        let e = expm(&a).unwrap();
        let mut neg = a.clone();
        neg.scale(-1.0);
        let einv = expm(&neg).unwrap();
        let mut prod = mul(&e, &einv);
        prod.add_diag(-1.0);
        assert!(prod.max_abs() < 1e-12, "e^A e^-A ≉ I: {}", prod.max_abs());
    }

    #[test]
    fn scaling_branch_engages_for_large_norms() {
        let mut a = test_matrix(8, 8, 5);
        a.scale(4.0); // ‖A‖₁ well above θ₁₃
        assert!(norm1(&a) > THETA13);
        let e = expm(&a).unwrap();
        let mut neg = a.clone();
        neg.scale(-1.0);
        let einv = expm(&neg).unwrap();
        let mut prod = mul(&e, &einv);
        prod.add_diag(-1.0);
        // Condition grows with the norm; allow a generous but finite bound.
        assert!(
            prod.max_abs() < 1e-8,
            "scaled e^A e^-A ≉ I: {}",
            prod.max_abs()
        );
    }

    #[test]
    fn expm_commutes_with_similarity_for_symmetric_input() {
        // e^{A} for symmetric A must be symmetric.
        let r = test_matrix(9, 9, 6);
        let a = Matrix::from_fn(9, 9, |i, j| 0.2 * (r[(i, j)] + r[(j, i)]));
        let e = expm(&a).unwrap();
        let et = e.transpose();
        assert!(crate::norms::rel_error(&e, &et) < 1e-13);
    }

    #[test]
    fn diag_exponential_helpers() {
        let d = [1.0, -1.0, 0.0];
        let e = expm_diag(0.5, &d);
        assert!((e[(0, 0)] - 0.5f64.exp()).abs() < 1e-15);
        assert!((e[(2, 2)] - 1.0).abs() < 1e-15);
        // scale_cols_exp equals a right-multiply by the diagonal exp.
        let a = test_matrix(3, 3, 7);
        let mut scaled = a.clone();
        scale_cols_exp(&mut scaled, 0.5, &d);
        let want = mul(&a, &e);
        assert!(crate::norms::rel_error(&scaled, &want) < 1e-15);
        // scale_rows_exp equals a left-multiply by the diagonal exp.
        let a = test_matrix(3, 4, 8);
        let mut scaled = a.clone();
        scale_rows_exp(&mut scaled, 0.5, &d);
        let want = mul(&e, &a);
        assert!(crate::norms::rel_error(&scaled, &want) < 1e-15);
    }

    #[test]
    fn empty_matrix_is_ok() {
        let e = expm(&Matrix::zeros(0, 0)).unwrap();
        assert_eq!(e.rows(), 0);
    }
}
