//! One-norm estimation without explicit inverses (Hager–Higham LACON).
//!
//! The FSI cluster size is stability-limited: each cluster chain
//! multiplies `c` blocks, and the usable `c` depends on how fast the
//! chain's conditioning grows (paper §II-C, citing the analysis of
//! Bai–Chen–Scalettar–Yamazaki). Deciding `c` therefore needs cheap
//! condition estimates — `O(N²)` per estimate via a few solves against an
//! existing LU factorization, instead of the `O(N³)` explicit inverse the
//! validation harnesses use.
//!
//! [`norm1_inv_estimate`] implements the classic Hager power iteration on
//! the dual norm: repeatedly solve `A·x = e` and `Aᵀ·z = sign(x)` and
//! climb the one-norm; 2–5 iterations typical, never more than
//! [`MAX_ITERS`].

use crate::lu::LuFactor;
use crate::matrix::Matrix;

/// Iteration cap of the Hager estimator (convergence is almost always in
/// ≤ 5 steps; the cap guards pathological cycling).
pub const MAX_ITERS: usize = 8;

/// Estimates `‖A⁻¹‖₁` from an LU factorization, without forming the
/// inverse. The estimate is a lower bound that in practice lands within
/// a small factor of the truth.
pub fn norm1_inv_estimate(f: &LuFactor) -> f64 {
    let n = f.n();
    if n == 0 {
        return 0.0;
    }
    // Start from the uniform vector.
    let mut x = Matrix::from_fn(n, 1, |_, _| 1.0 / n as f64);
    let mut best = 0.0f64;
    let mut last_sign: Vec<f64> = Vec::new();
    for _ in 0..MAX_ITERS {
        // y = A⁻¹ x.
        f.solve_in_place(x.as_mut());
        let est: f64 = x.as_slice().iter().map(|v| v.abs()).sum();
        best = best.max(est);
        // ξ = sign(y).
        let sign: Vec<f64> = x
            .as_slice()
            .iter()
            .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        if sign == last_sign {
            break;
        }
        last_sign = sign.clone();
        // z = A⁻ᵀ ξ.
        let mut z = Matrix::from_col_major(n, 1, sign);
        f.solve_transpose_in_place(z.as_mut());
        // Next x: e_j at the index maximizing |z|.
        let j = crate::blas::iamax(z.as_slice());
        if z.as_slice()[j].abs() <= z.as_slice().iter().map(|v| v.abs()).sum::<f64>() / n as f64 {
            // Flat dual vector → converged.
            break;
        }
        x = Matrix::zeros(n, 1);
        x[(j, 0)] = 1.0;
    }
    best
}

/// Estimated one-norm condition number `κ₁(A) ≈ ‖A‖₁·est(‖A⁻¹‖₁)` from a
/// matrix and its factorization.
pub fn cond1_estimate(a: &Matrix, f: &LuFactor) -> f64 {
    crate::norms::norm1(a) * norm1_inv_estimate(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::test_matrix;
    use crate::lu::getrf;
    use crate::norms::{cond1, norm1};

    #[test]
    fn estimate_is_exact_for_diagonal_matrices() {
        let d = Matrix::diag(&[4.0, -0.5, 2.0, 1.0]);
        let f = getrf(d.clone()).unwrap();
        let est = norm1_inv_estimate(&f);
        // ‖D⁻¹‖₁ = 1/0.5 = 2.
        assert!((est - 2.0).abs() < 1e-12, "est {est}");
        let kappa = cond1_estimate(&d, &f);
        assert!((kappa - 8.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_tracks_true_condition_number() {
        for n in [5usize, 20, 50] {
            let mut a = test_matrix(n, n, n as u64);
            a.add_diag(2.0);
            let f = getrf(a.clone()).unwrap();
            let est = cond1_estimate(&a, &f);
            let truth = cond1(&a).unwrap();
            // Hager is a lower bound, typically within a small factor.
            assert!(
                est <= truth * (1.0 + 1e-10),
                "n={n}: est {est} > true {truth}"
            );
            assert!(est >= truth / 10.0, "n={n}: est {est} ≪ true {truth}");
        }
    }

    #[test]
    fn estimate_detects_near_singularity() {
        // Graded diagonal: condition 1e8.
        let d = Matrix::diag(&[1.0, 1e-4, 1e-8]);
        let f = getrf(d.clone()).unwrap();
        let est = cond1_estimate(&d, &f);
        assert!(est > 1e7, "should flag the 1e8 condition: {est}");
    }

    #[test]
    fn identity_has_condition_one() {
        let i = Matrix::identity(12);
        let f = getrf(i.clone()).unwrap();
        assert!((cond1_estimate(&i, &f) - 1.0).abs() < 1e-12);
        assert!((norm1(&i) - 1.0).abs() < 1e-15);
    }
}
