//! One-norm estimation without explicit inverses (Hager–Higham LACON).
//!
//! The FSI cluster size is stability-limited: each cluster chain
//! multiplies `c` blocks, and the usable `c` depends on how fast the
//! chain's conditioning grows (paper §II-C, citing the analysis of
//! Bai–Chen–Scalettar–Yamazaki). Deciding `c` therefore needs cheap
//! condition estimates — `O(N²)` per estimate via a few solves against an
//! existing LU factorization, instead of the `O(N³)` explicit inverse the
//! validation harnesses use.
//!
//! [`norm1_inv_estimate`] implements the classic Hager power iteration on
//! the dual norm: repeatedly solve `A·x = e` and `Aᵀ·z = sign(x)` and
//! climb the one-norm; 2–5 iterations typical, never more than
//! [`MAX_ITERS`].

use crate::lu::LuFactor;
use crate::matrix::Matrix;

/// Iteration cap of the Hager estimator (convergence is almost always in
/// ≤ 5 steps; the cap guards pathological cycling).
pub const MAX_ITERS: usize = 8;

/// Outcome of one Hager estimation run: the estimate plus convergence
/// diagnostics, so callers (the health layer in particular) can distrust
/// a value produced by hitting the iteration cap instead of the
/// sign-vector fixed point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Norm1Estimate {
    /// The `‖A⁻¹‖₁` lower-bound estimate.
    pub est: f64,
    /// Power-iteration steps actually performed.
    pub iterations: usize,
    /// Whether the iteration reached its fixed point (`false` means the
    /// [`MAX_ITERS`] cap fired and the estimate may be loose).
    pub converged: bool,
}

impl Norm1Estimate {
    /// The estimate as a [`crate::error::Result`]: a capped run surfaces
    /// [`DenseError::NoConvergence`](crate::DenseError::NoConvergence)
    /// with the iteration count instead of silently returning the best
    /// value seen.
    pub fn checked(&self) -> crate::error::Result<f64> {
        if self.converged {
            Ok(self.est)
        } else {
            Err(crate::DenseError::NoConvergence {
                iterations: self.iterations,
            })
        }
    }
}

/// Estimates `‖A⁻¹‖₁` from an LU factorization, without forming the
/// inverse. The estimate is a lower bound that in practice lands within
/// a small factor of the truth.
///
/// Convenience wrapper over [`norm1_inv_estimate_detailed`] that keeps
/// the historical `f64` signature (capped runs still return the best
/// estimate seen).
pub fn norm1_inv_estimate(f: &LuFactor) -> f64 {
    norm1_inv_estimate_detailed(f).est
}

/// [`norm1_inv_estimate`] with convergence diagnostics: reports how many
/// power-iteration steps ran and whether the sign-vector fixed point was
/// reached before the [`MAX_ITERS`] cap.
pub fn norm1_inv_estimate_detailed(f: &LuFactor) -> Norm1Estimate {
    let n = f.n();
    if n == 0 {
        return Norm1Estimate {
            est: 0.0,
            iterations: 0,
            converged: true,
        };
    }
    // Start from the uniform vector.
    let mut x = Matrix::from_fn(n, 1, |_, _| 1.0 / n as f64);
    let mut best = 0.0f64;
    let mut last_sign: Vec<f64> = Vec::new();
    let mut iterations = 0usize;
    let mut converged = false;
    for _ in 0..MAX_ITERS {
        iterations += 1;
        // y = A⁻¹ x.
        f.solve_in_place(x.as_mut());
        let est: f64 = x.as_slice().iter().map(|v| v.abs()).sum();
        best = best.max(est);
        // ξ = sign(y).
        let sign: Vec<f64> = x
            .as_slice()
            .iter()
            .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
        if sign == last_sign {
            converged = true;
            break;
        }
        last_sign = sign.clone();
        // z = A⁻ᵀ ξ.
        let mut z = Matrix::from_col_major(n, 1, sign);
        f.solve_transpose_in_place(z.as_mut());
        // Next x: e_j at the index maximizing |z|.
        let j = crate::blas::iamax(z.as_slice());
        if z.as_slice()[j].abs() <= z.as_slice().iter().map(|v| v.abs()).sum::<f64>() / n as f64 {
            // Flat dual vector → converged.
            converged = true;
            break;
        }
        x = Matrix::zeros(n, 1);
        x[(j, 0)] = 1.0;
    }
    Norm1Estimate {
        est: best,
        iterations,
        converged,
    }
}

/// Estimated one-norm condition number `κ₁(A) ≈ ‖A‖₁·est(‖A⁻¹‖₁)` from a
/// matrix and its factorization.
pub fn cond1_estimate(a: &Matrix, f: &LuFactor) -> f64 {
    crate::norms::norm1(a) * norm1_inv_estimate(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::test_matrix;
    use crate::lu::getrf;
    use crate::norms::{cond1, norm1};

    #[test]
    fn estimate_is_exact_for_diagonal_matrices() {
        let d = Matrix::diag(&[4.0, -0.5, 2.0, 1.0]);
        let f = getrf(d.clone()).unwrap();
        let est = norm1_inv_estimate(&f);
        // ‖D⁻¹‖₁ = 1/0.5 = 2.
        assert!((est - 2.0).abs() < 1e-12, "est {est}");
        let kappa = cond1_estimate(&d, &f);
        assert!((kappa - 8.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_tracks_true_condition_number() {
        for n in [5usize, 20, 50] {
            let mut a = test_matrix(n, n, n as u64);
            a.add_diag(2.0);
            let f = getrf(a.clone()).unwrap();
            let est = cond1_estimate(&a, &f);
            let truth = cond1(&a).unwrap();
            // Hager is a lower bound, typically within a small factor.
            assert!(
                est <= truth * (1.0 + 1e-10),
                "n={n}: est {est} > true {truth}"
            );
            assert!(est >= truth / 10.0, "n={n}: est {est} ≪ true {truth}");
        }
    }

    #[test]
    fn estimate_detects_near_singularity() {
        // Graded diagonal: condition 1e8.
        let d = Matrix::diag(&[1.0, 1e-4, 1e-8]);
        let f = getrf(d.clone()).unwrap();
        let est = cond1_estimate(&d, &f);
        assert!(est > 1e7, "should flag the 1e8 condition: {est}");
    }

    #[test]
    fn detailed_estimate_reports_convergence() {
        let mut a = test_matrix(16, 16, 3);
        a.add_diag(2.0);
        let f = getrf(a).unwrap();
        let d = norm1_inv_estimate_detailed(&f);
        assert!(d.converged, "benign matrix converges");
        assert!(d.iterations >= 1 && d.iterations <= MAX_ITERS);
        assert_eq!(
            d.est,
            norm1_inv_estimate(&f),
            "wrapper forwards the estimate"
        );
        assert_eq!(d.checked(), Ok(d.est));
        // A capped (synthetic) run surfaces NoConvergence.
        let capped = Norm1Estimate {
            est: 1.0,
            iterations: MAX_ITERS,
            converged: false,
        };
        assert_eq!(
            capped.checked(),
            Err(crate::DenseError::NoConvergence {
                iterations: MAX_ITERS
            })
        );
    }

    #[test]
    fn identity_has_condition_one() {
        let i = Matrix::identity(12);
        let f = getrf(i.clone()).unwrap();
        assert!((cond1_estimate(&i, &f) - 1.0).abs() < 1e-12);
        assert!((norm1(&i) - 1.0).abs() < 1e-15);
    }
}
