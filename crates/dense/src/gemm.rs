//! Level-3 BLAS: general matrix-matrix multiply as a packed,
//! register-blocked micro-kernel engine.
//!
//! `GEMM` dominates the FSI algorithm — the clustering stage is a chain of
//! `B` products, the wrapping stage multiplies each produced block by a `B`
//! factor, and BSOFI's `R⁻¹` and `X·Qᵀ` phases are block products. The paper
//! highlights that FSI performance tracks DGEMM throughput, so this kernel
//! is the crate's hot spot.
//!
//! # Architecture
//!
//! The engine uses the Goto/BLIS decomposition (the structure of faer-rs,
//! OpenBLAS, and the MKL the paper's Edison runs link against):
//!
//! ```text
//! for jc in steps of NC           │ columns of C and B
//!   for pc in steps of KC         │ depth — pack B̃ (KC×NC, NR-strided)
//!     for ic in steps of MC       │ rows of C and A — pack Ã (MC×KC, MR-strided)
//!       for jr in steps of NR     │ macro-kernel over the packed panels
//!         for ir in steps of MR   │
//!           C[ir…, jr…] += alpha · Ã·B̃   (MR×NR register tile)
//! ```
//!
//! **Packing.** Each `MC × KC` block of `op(A)` is copied into row panels
//! laid out MR-strided (`panel[p·MR + r] = op(A)[r, p]`) and each
//! `KC × NC` block of `op(B)` into NR-strided column panels, with partial
//! panels zero-padded to full width. Packing reads operands through their
//! *logical* indices, so all four `Op` combinations (`NN`/`TN`/`NT`/`TT`)
//! canonicalize to the same layout and route through the same micro-kernel
//! — there are no separate transposed code paths, and a `Trans` product
//! runs at the `NoTrans` rate. The pack buffers are borrowed from the
//! thread-local pool in [`fsi_runtime::workspace`], so steady-state calls
//! perform no allocation.
//!
//! **Micro-kernel.** The innermost kernel accumulates an `MR × NR` tile
//! of C held entirely in vector registers. The kernel implementations and
//! the runtime tier dispatch (AVX-512 16×4, AVX2 8×4, portable scalar
//! 8×4) live in [`crate::kernel`]; every tier keeps `NR = 4`, so the B
//! panel layout is tier-independent and the macro loop only adapts its
//! row-tile stride to the active tier's `MR`.
//!
//! **Blocking parameters.** `MC = 96` (Ã ≈ 192 KiB, L2-resident, a
//! multiple of both 8 and 16 so either tile height divides it),
//! `KC = 256`, `NC = 1024` (B̃ ≈ 2 MiB, L3-resident).
//!
//! **Batched small products.** For the paper's hot shape — many
//! independent N≤64 products in the CLS stage — this per-call engine
//! leaves half the throughput in packing and fill passes. The
//! [`crate::batch`] module provides [`crate::batch::gemm_batched`], which
//! streams a uniform-shape batch through the micro-kernel with shared
//! operands packed once and a no-pack direct path for `NoTrans` small
//! shapes; [`chain_mul`] routes eligible chains through it automatically.
//!
//! **Parallelism.** C is tiled over an M×N *thread grid* chosen by
//! `thread_grid` to use every pool thread while keeping tiles near
//! square — so BSOFI's tall-skinny `2N × N` panels split over rows instead
//! of starving on `min(threads, n)` column splits. Tiles are disjoint
//! `MatMut`s; each task runs the full sequential packed engine on its
//! tile, with identical per-element accumulation order to a sequential
//! run, so parallel results are bitwise equal to sequential ones.

use crate::matrix::{MatMut, MatRef, Matrix};
use fsi_runtime::flops;
use fsi_runtime::{parallel_for, workspace, Par, Schedule};

/// Transposition selector for [`gemm_op`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl Op {
    /// Logical row count of `op(A)`.
    pub(crate) fn rows(self, a: MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.rows(),
            Op::Trans => a.cols(),
        }
    }
    /// Logical column count of `op(A)`.
    pub(crate) fn cols(self, a: MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.cols(),
            Op::Trans => a.rows(),
        }
    }
}

/// Base register-tile height (the 8×4 tiers; AVX-512 doubles this to 16).
/// Used by shape heuristics and tests; the packed engine itself reads the
/// active tier's `mr`.
const MR: usize = 8;
/// Register tile width: columns of C per micro-kernel call. Identical
/// across every kernel tier, so packed B panels are tier-independent.
const NR: usize = 4;
/// Cache block: rows of A per packed panel (multiple of every tier `MR`).
pub(crate) const MC: usize = 96;
/// Cache block: depth per packed panel.
pub(crate) const KC: usize = 256;
/// Cache block: columns of B per packed panel (multiple of `NR`).
const NC: usize = 1024;

/// `C := alpha·A·B + beta·C` (both operands as stored).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm(par: Par<'_>, alpha: f64, a: MatRef<'_>, b: MatRef<'_>, beta: f64, c: MatMut<'_>) {
    gemm_op(par, alpha, Op::NoTrans, a, Op::NoTrans, b, beta, c)
}

/// `C := alpha·op(A)·op(B) + beta·C`.
///
/// # Panics
/// Panics on dimension mismatch.
#[allow(clippy::too_many_arguments)] // mirrors BLAS dgemm's argument list
pub fn gemm_op(
    par: Par<'_>,
    alpha: f64,
    opa: Op,
    a: MatRef<'_>,
    opb: Op,
    b: MatRef<'_>,
    beta: f64,
    c: MatMut<'_>,
) {
    gemm_op_impl(true, par, alpha, opa, a, opb, b, beta, c)
}

/// [`gemm_op`] without flop accounting or a kernel span: for kernels (QR's
/// LARFB, the blocked TRTRI) that already charged their own analytic total
/// and use gemm as an internal detail — charging here too would
/// double-count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_op_uncounted(
    par: Par<'_>,
    alpha: f64,
    opa: Op,
    a: MatRef<'_>,
    opb: Op,
    b: MatRef<'_>,
    beta: f64,
    c: MatMut<'_>,
) {
    gemm_op_impl(false, par, alpha, opa, a, opb, b, beta, c)
}

#[allow(clippy::too_many_arguments)]
fn gemm_op_impl(
    count: bool,
    par: Par<'_>,
    alpha: f64,
    opa: Op,
    a: MatRef<'_>,
    opb: Op,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let m = opa.rows(a);
    let k = opa.cols(a);
    let n = opb.cols(b);
    assert_eq!(opb.rows(b), k, "gemm: inner dimensions disagree");
    assert_eq!(c.rows(), m, "gemm: C row count mismatch");
    assert_eq!(c.cols(), n, "gemm: C column count mismatch");
    if m == 0 || n == 0 {
        return;
    }

    // Scale C by beta up front so the accumulation engine only adds.
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if k == 0 || alpha == 0.0 {
        return;
    }

    let _count = if count {
        Some(gemm_count(m, n, k))
    } else {
        None
    };

    let (tm, tn) = thread_grid(par.threads().max(1), m, n);
    if tm * tn <= 1 {
        gemm_packed(alpha, opa, a, opb, b, c);
        return;
    }
    let pool = par.pool().expect("threads > 1 implies pool");
    let row_chunk = m.div_ceil(tm);
    let col_chunk = n.div_ceil(tn);
    let col_panels = c.split_cols_chunks(col_chunk);
    pool.scope(|s| {
        for (tj, cc) in col_panels.into_iter().enumerate() {
            let j0 = tj * col_chunk;
            let bs = match opb {
                Op::NoTrans => b.submatrix(0, j0, k, cc.cols()),
                Op::Trans => b.submatrix(j0, 0, cc.cols(), k),
            };
            for (ti, ct) in cc.split_rows_chunks(row_chunk).into_iter().enumerate() {
                let i0 = ti * row_chunk;
                let at = match opa {
                    Op::NoTrans => a.submatrix(i0, 0, ct.rows(), k),
                    Op::Trans => a.submatrix(0, i0, k, ct.rows()),
                };
                s.spawn(move || gemm_packed(alpha, opa, at, opb, bs, ct));
            }
        }
    });
}

/// The `dense.gemm` meter, shared by [`gemm_op`] and the chain/batch fast
/// paths so every small-product route lands under one registry name.
pub(crate) static GEMM_METER: fsi_runtime::metrics::Meter =
    fsi_runtime::metrics::Meter::new("dense.gemm");

/// Flop threshold below which metering skips the timed (`Instant`-reading)
/// route: under ~2·64³ flops the two clock reads rival the gemm itself, so
/// small calls take the two-relaxed-adds counter route instead.
pub(crate) const TIMED_METER_MIN: u64 = 2 * 64 * 64 * 64;

/// Open accounting guards for one `m × n × k` gemm: a `gemm` kernel span,
/// the analytic flop/byte charges, and the `dense.gemm` meter (timed only
/// for kernel-sized calls). Dropping the returned value closes the span.
/// The chain fast path in [`crate::batch`] charges per product through
/// this same helper, so flop attribution is identical on every route.
pub(crate) struct GemmCount {
    _kernel: fsi_runtime::trace::SpanGuard,
    _meter: Option<fsi_runtime::metrics::MeterGuard<'static>>,
}

pub(crate) fn gemm_count(m: usize, n: usize, k: usize) -> GemmCount {
    // Open before charging so the flops land on this kernel's span (the
    // guard is a no-op below FSI_TRACE=2).
    let kernel = fsi_runtime::trace::kernel_span("gemm");
    let f = flops::counts::gemm(m, n, k);
    flops::add_flops(f);
    fsi_runtime::trace::charge_bytes(8 * (m * k + k * n + 2 * m * n) as u64);
    let meter = if f >= TIMED_METER_MIN {
        Some(GEMM_METER.start(f))
    } else {
        GEMM_METER.observe(f);
        None
    };
    GemmCount {
        _kernel: kernel,
        _meter: meter,
    }
}

/// Chooses a `tm × tn` thread grid for an `m × n` output: among the splits
/// that use the most threads, the one whose tiles are closest to square
/// (minimal `|ln aspect|`). A 512×8 output on 4 threads gets `(4, 1)`
/// (row split — the BSOFI tall-skinny case), 100×100 gets `(2, 2)`.
fn thread_grid(threads: usize, m: usize, n: usize) -> (usize, usize) {
    // Never split below one register tile per task.
    let max_tm = m.div_ceil(MR).max(1);
    let max_tn = n.div_ceil(NR).max(1);
    if threads <= 1 || max_tm * max_tn == 1 {
        return (1, 1);
    }
    let mut best = (1, 1);
    let mut best_used = 0usize;
    let mut best_aspect = f64::INFINITY;
    for tm in 1..=threads.min(max_tm) {
        let tn = (threads / tm).min(max_tn).max(1);
        let used = tm * tn;
        let aspect = ((m as f64 / tm as f64) / (n as f64 / tn as f64)).ln().abs();
        if used > best_used || (used == best_used && aspect < best_aspect) {
            best = (tm, tn);
            best_used = used;
            best_aspect = aspect;
        }
    }
    best
}

/// The sequential packed engine: `C += alpha·op(A)·op(B)` through the full
/// NC/KC/MC loop nest, pack buffers borrowed from the thread-local
/// workspace pool. Offsets into `a`/`b` are logical `op(·)` coordinates,
/// so every transposition combination shares this one path.
fn gemm_packed(alpha: f64, opa: Op, a: MatRef<'_>, opb: Op, b: MatRef<'_>, mut c: MatMut<'_>) {
    let m = c.rows();
    let n = c.cols();
    let k = opa.cols(a);
    let kt = crate::kernel::active();
    let (tile_m, tile_n) = (kt.mr, kt.nr);
    let micro = kt.micro;
    let ldc = c.ld();
    let cptr = c.as_mut_ptr();
    let a_len = MC.min(m).div_ceil(tile_m) * tile_m * KC.min(k);
    let b_len = NC.min(n).div_ceil(tile_n) * tile_n * KC.min(k);
    workspace::with_scratch2(a_len, b_len, |apack, bpack| {
        let mut jc = 0;
        while jc < n {
            let ncb = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                pack_b(opb, b, pc, jc, kc, ncb, tile_n, bpack);
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    pack_a(opa, a, ic, pc, mc, kc, tile_m, apack);
                    // Macro-kernel: sweep the packed panels tile by tile.
                    let mut jr = 0;
                    while jr < ncb {
                        let nr = tile_n.min(ncb - jr);
                        let bpanel = bpack[(jr / tile_n) * (kc * tile_n)..].as_ptr();
                        let mut ir = 0;
                        while ir < mc {
                            let mr = tile_m.min(mc - ir);
                            let apanel = apack[(ir / tile_m) * (kc * tile_m)..].as_ptr();
                            // SAFETY: the panels hold kc·MR / kc·NR packed
                            // values by construction; the C tile at
                            // (ic+ir, jc+jr) has mr×nr live elements inside
                            // this exclusive view, and the kernel writes
                            // only that corner.
                            unsafe {
                                let ctile = cptr.add((ic + ir) + (jc + jr) * ldc);
                                micro(kc, alpha, apanel, bpanel, ctile, ldc, mr, nr, false);
                            }
                            ir += tile_m;
                        }
                        jr += tile_n;
                    }
                    ic += mc;
                }
                pc += kc;
            }
            jc += ncb;
        }
    });
}

/// Packs the `mc × kc` block of `op(A)` at logical offset `(ic, pc)` into
/// `tile_m`-strided row panels: panel `ip` stores `op(A)[ip·MR + r, p]` at
/// `panel[p·MR + r]` (`MR = tile_m`, the active tier's tile height),
/// zero-padded to a full `MR` so the micro-kernel never branches on tile
/// height.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_a(
    opa: Op,
    a: MatRef<'_>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    tile_m: usize,
    dst: &mut [f64],
) {
    for ip in 0..mc.div_ceil(tile_m) {
        let i0 = ip * tile_m;
        let mr = tile_m.min(mc - i0);
        let panel = &mut dst[ip * tile_m * kc..(ip + 1) * tile_m * kc];
        match opa {
            // op(A)[i, p] = A[ic+i, pc+p]: fixed p is a contiguous column
            // segment of height mr.
            Op::NoTrans => {
                for p in 0..kc {
                    let src = &a.col(pc + p)[ic + i0..ic + i0 + mr];
                    let d = &mut panel[p * tile_m..(p + 1) * tile_m];
                    d[..mr].copy_from_slice(src);
                    d[mr..].fill(0.0);
                }
            }
            // op(A)[i, p] = A[pc+p, ic+i]: fixed i is a contiguous column
            // segment of depth kc, scattered into stride-MR slots.
            Op::Trans => {
                for r in 0..tile_m {
                    if r < mr {
                        let src = &a.col(ic + i0 + r)[pc..pc + kc];
                        for (p, &v) in src.iter().enumerate() {
                            panel[p * tile_m + r] = v;
                        }
                    } else {
                        for p in 0..kc {
                            panel[p * tile_m + r] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Packs the `kc × nc` block of `op(B)` at logical offset `(pc, jc)` into
/// `tile_n`-strided column panels: panel `jp` stores `op(B)[p, jp·NR + j]`
/// at `panel[p·NR + j]` (`NR = tile_n`), zero-padded to a full `NR`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_b(
    opb: Op,
    b: MatRef<'_>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    tile_n: usize,
    dst: &mut [f64],
) {
    for jp in 0..nc.div_ceil(tile_n) {
        let j0 = jp * tile_n;
        let nr = tile_n.min(nc - j0);
        let panel = &mut dst[jp * tile_n * kc..(jp + 1) * tile_n * kc];
        match opb {
            // op(B)[p, j] = B[pc+p, jc+j]: fixed j is a contiguous column
            // segment of depth kc, scattered into stride-NR slots.
            Op::NoTrans => {
                for j in 0..tile_n {
                    if j < nr {
                        let src = &b.col(jc + j0 + j)[pc..pc + kc];
                        for (p, &v) in src.iter().enumerate() {
                            panel[p * tile_n + j] = v;
                        }
                    } else {
                        for p in 0..kc {
                            panel[p * tile_n + j] = 0.0;
                        }
                    }
                }
            }
            // op(B)[p, j] = B[jc+j, pc+p]: fixed p is a contiguous column
            // segment of width nr.
            Op::Trans => {
                for p in 0..kc {
                    let src = &b.col(pc + p)[jc + j0..jc + j0 + nr];
                    let d = &mut panel[p * tile_n..(p + 1) * tile_n];
                    d[..nr].copy_from_slice(src);
                    d[nr..].fill(0.0);
                }
            }
        }
    }
}

/// Convenience: allocates and returns `A·B` (sequential).
pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(Par::Seq, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

/// Convenience: allocates and returns `A·B` using the given parallelism.
pub fn mul_par(par: Par<'_>, a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(par, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

/// Multiplies a chain `M_1 · M_2 · ⋯ · M_p` left to right, optionally
/// parallelizing each product. Used by the clustering stage and by the
/// explicit-inversion baseline's matrix chains.
///
/// The running product ping-pongs between two buffers: the previous
/// accumulator is recycled as the next output whenever the shape allows,
/// so a `c`-factor cluster chain allocates at most two matrices instead of
/// one per factor.
///
/// Small sequential chains (every shape within the small-N fast-path
/// bounds) route through [`crate::batch`]'s no-pack direct kernel, which
/// skips per-product packing, C fill passes, and workspace borrows —
/// bitwise identical to the general path (see [`crate::kernel`]'s
/// accumulation-order contract), with identical per-product flop
/// attribution.
///
/// # Panics
/// Panics if the chain is empty or shapes are incompatible.
pub fn chain_mul(par: Par<'_>, factors: &[&Matrix]) -> Matrix {
    if factors.len() > 1 && par.threads() <= 1 && crate::batch::chain_is_small(factors) {
        return crate::batch::chain_mul_small(factors);
    }
    let (first, rest) = factors.split_first().expect("chain_mul needs a factor");
    let mut acc = (*first).clone();
    let mut spare: Option<Matrix> = None;
    for f in rest {
        let (rows, cols) = (acc.rows(), f.cols());
        let mut out = match spare.take() {
            // Stale contents are fine: beta = 0 overwrites every element.
            Some(s) if s.rows() == rows && s.cols() == cols => s,
            _ => Matrix::zeros(rows, cols),
        };
        gemm(par, 1.0, acc.as_ref(), f.as_ref(), 0.0, out.as_mut());
        spare = Some(std::mem::replace(&mut acc, out));
    }
    acc
}

/// A deterministic splitmix64-based pseudo-random matrix for tests and
/// benches, without requiring a rand dependency in this crate.
pub fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        // Map to (-1, 1).
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    Matrix::from_fn(rows, cols, |_, _| next())
}

/// Schedule used when callers parallelize *over* many independent gemms
/// instead of inside one: re-exported for symmetry in the FSI drivers.
pub const OUTER_SCHEDULE: Schedule = Schedule::Dynamic(1);

/// Runs `n_tasks` independent closures, each performing its own sequential
/// gemms — the "parallel outside, sequential inside" pattern of the FSI
/// OpenMP mode.
pub fn parallel_tasks<F: Fn(usize) + Sync>(par: Par<'_>, n_tasks: usize, f: F) {
    parallel_for(par, n_tasks, OUTER_SCHEDULE, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_runtime::ThreadPool;

    fn naive(opa: Op, a: &Matrix, opb: Op, b: &Matrix) -> Matrix {
        let at = match opa {
            Op::NoTrans => a.clone(),
            Op::Trans => a.transpose(),
        };
        let bt = match opb {
            Op::NoTrans => b.clone(),
            Op::Trans => b.transpose(),
        };
        let mut c = Matrix::zeros(at.rows(), bt.cols());
        for i in 0..at.rows() {
            for j in 0..bt.cols() {
                let mut s = 0.0;
                for p in 0..at.cols() {
                    s += at[(i, p)] * bt[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        let mut d = a.clone();
        d.sub_assign(b);
        let scale = b.max_abs().max(1.0);
        assert!(
            d.max_abs() <= tol * scale,
            "matrices differ: |diff|={} scale={}",
            d.max_abs(),
            scale
        );
    }

    /// Operands shaped so `op(A)` is `m × k` and `op(B)` is `k × n`.
    fn operands(m: usize, k: usize, n: usize, opa: Op, opb: Op, seed: u64) -> (Matrix, Matrix) {
        let a = match opa {
            Op::NoTrans => test_matrix(m, k, seed),
            Op::Trans => test_matrix(k, m, seed),
        };
        let b = match opb {
            Op::NoTrans => test_matrix(k, n, seed + 1),
            Op::Trans => test_matrix(n, k, seed + 1),
        };
        (a, b)
    }

    const ALL_OPS: [(Op, Op); 4] = [
        (Op::NoTrans, Op::NoTrans),
        (Op::Trans, Op::NoTrans),
        (Op::NoTrans, Op::Trans),
        (Op::Trans, Op::Trans),
    ];

    #[test]
    fn nn_matches_naive_on_odd_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 13, 9),
            (130, 200, 65),
            (64, 64, 64),
        ] {
            let a = test_matrix(m, k, 1);
            let b = test_matrix(k, n, 2);
            let c = mul(&a, &b);
            assert_close(&c, &naive(Op::NoTrans, &a, Op::NoTrans, &b), 1e-13);
        }
    }

    #[test]
    fn all_op_combos_match_naive_on_odd_shapes() {
        // Odd and prime shapes straddling the MC/KC/NC block boundaries:
        // every Op combination routes through the same packed micro-kernel.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 13, 9),
            (23, 29, 31),
            (97, 101, 89),
            (130, 259, 65),
        ] {
            for (opa, opb) in ALL_OPS {
                let (a, b) = operands(m, k, n, opa, opb, 7);
                let mut c = Matrix::zeros(m, n);
                gemm_op(
                    Par::Seq,
                    1.0,
                    opa,
                    a.as_ref(),
                    opb,
                    b.as_ref(),
                    0.0,
                    c.as_mut(),
                );
                assert_close(&c, &naive(opa, &a, opb, &b), 1e-13);
            }
        }
    }

    #[test]
    fn remainder_edges_cover_partial_tiles() {
        // Every combination of full / partial MR row tiles and NR column
        // tiles, plus depths straddling the KC boundary.
        let ms = [1, MR - 1, MR, MR + 1, 2 * MR + 3];
        let ns = [1, NR - 1, NR, NR + 1, 2 * NR + 3];
        let ks = [1, 7, KC, KC + 1];
        for &m in &ms {
            for &n in &ns {
                for &k in &ks {
                    for (opa, opb) in ALL_OPS {
                        let (a, b) = operands(m, k, n, opa, opb, (m + 3 * n + 17 * k) as u64);
                        let mut c = Matrix::zeros(m, n);
                        gemm_op(
                            Par::Seq,
                            1.0,
                            opa,
                            a.as_ref(),
                            opb,
                            b.as_ref(),
                            0.0,
                            c.as_mut(),
                        );
                        assert_close(&c, &naive(opa, &a, opb, &b), 1e-13);
                    }
                }
            }
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        let a = test_matrix(8, 6, 3);
        let b = test_matrix(6, 10, 4);
        let c0 = test_matrix(8, 10, 5);
        for &(alpha, beta) in &[(1.0, 0.0), (2.0, 1.0), (-0.5, 0.25), (0.0, 2.0), (1.0, 1.0)] {
            let mut c = c0.clone();
            gemm(Par::Seq, alpha, a.as_ref(), b.as_ref(), beta, c.as_mut());
            let mut want = naive(Op::NoTrans, &a, Op::NoTrans, &b);
            want.scale(alpha);
            let mut scaled_c0 = c0.clone();
            scaled_c0.scale(beta);
            want.add_assign(&scaled_c0);
            assert_close(&c, &want, 1e-13);
        }
    }

    #[test]
    fn transposed_paths_match_naive() {
        let cases = [
            (Op::Trans, Op::NoTrans),
            (Op::NoTrans, Op::Trans),
            (Op::Trans, Op::Trans),
        ];
        for (opa, opb) in cases {
            let (m, k, n) = (9, 7, 11);
            let (a, b) = operands(m, k, n, opa, opb, 10);
            let mut c = Matrix::zeros(m, n);
            gemm_op(
                Par::Seq,
                1.0,
                opa,
                a.as_ref(),
                opb,
                b.as_ref(),
                0.0,
                c.as_mut(),
            );
            assert_close(&c, &naive(opa, &a, opb, &b), 1e-13);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ThreadPool::new(4);
        let a = test_matrix(150, 90, 20);
        let b = test_matrix(90, 170, 21);
        let seq = mul(&a, &b);
        let par = mul_par(Par::Pool(&pool), &a, &b);
        assert_close(&par, &seq, 1e-14);
        // Also with transposes.
        let mut c1 = Matrix::zeros(90, 170);
        let mut c2 = Matrix::zeros(90, 170);
        gemm_op(
            Par::Seq,
            1.0,
            Op::Trans,
            a.as_ref(),
            Op::NoTrans,
            seq.as_ref(),
            0.0,
            c1.as_mut(),
        );
        gemm_op(
            Par::Pool(&pool),
            1.0,
            Op::Trans,
            a.as_ref(),
            Op::NoTrans,
            seq.as_ref(),
            0.0,
            c2.as_mut(),
        );
        assert_close(&c1, &c2, 1e-14);
    }

    #[test]
    fn parallel_tall_skinny_splits_rows() {
        // BSOFI's 2N×N panel shape: narrower than the thread count is
        // no longer a serialization point because the grid splits rows.
        assert_eq!(thread_grid(4, 512, 8), (4, 1));
        assert_eq!(thread_grid(4, 100, 100), (2, 2));
        assert_eq!(thread_grid(1, 100, 100), (1, 1));
        let pool = ThreadPool::new(4);
        let a = test_matrix(256, 64, 22);
        let b = test_matrix(64, 3, 23);
        let seq = mul(&a, &b);
        let par = mul_par(Par::Pool(&pool), &a, &b);
        assert_close(&par, &seq, 1e-14);
    }

    #[test]
    fn gemm_on_submatrix_views() {
        let a = test_matrix(12, 12, 30);
        let b = test_matrix(12, 12, 31);
        let mut c = Matrix::zeros(12, 12);
        // Multiply the centre 6×6 blocks only.
        gemm(
            Par::Seq,
            1.0,
            a.view(3, 3, 6, 6),
            b.view(3, 3, 6, 6),
            0.0,
            c.view_mut(3, 3, 6, 6),
        );
        let ab = mul(&a.block(3, 3, 6, 6), &b.block(3, 3, 6, 6));
        assert_close(&c.block(3, 3, 6, 6), &ab, 1e-13);
        assert_eq!(c[(0, 0)], 0.0, "outside the target block untouched");
    }

    #[test]
    fn transposed_gemm_on_strided_views() {
        // All four Op combos on interior views (ld > rows): the packing
        // routines must honour the leading dimension.
        let pa = test_matrix(25, 25, 33);
        let pb = test_matrix(25, 25, 34);
        let (m, k, n) = (9, 11, 6);
        for (opa, opb) in ALL_OPS {
            let av = match opa {
                Op::NoTrans => pa.view(2, 3, m, k),
                Op::Trans => pa.view(2, 3, k, m),
            };
            let bv = match opb {
                Op::NoTrans => pb.view(4, 1, k, n),
                Op::Trans => pb.view(4, 1, n, k),
            };
            let mut c = Matrix::zeros(20, 20);
            gemm_op(Par::Seq, 1.0, opa, av, opb, bv, 0.0, c.view_mut(5, 7, m, n));
            let want = naive(opa, &av.to_owned(), opb, &bv.to_owned());
            assert_close(&c.block(5, 7, m, n), &want, 1e-13);
            assert_eq!(c[(0, 0)], 0.0, "outside the target view untouched");
        }
    }

    #[test]
    fn empty_k_only_applies_beta() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 2.0);
        gemm(Par::Seq, 1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
        assert_eq!(c[(1, 1)], 1.0);
    }

    #[test]
    fn chain_mul_left_to_right() {
        let a = test_matrix(4, 4, 40);
        let b = test_matrix(4, 4, 41);
        let c = test_matrix(4, 4, 42);
        let abc = chain_mul(Par::Seq, &[&a, &b, &c]);
        assert_close(&abc, &mul(&mul(&a, &b), &c), 1e-13);
        let single = chain_mul(Par::Seq, &[&a]);
        assert_close(&single, &a, 0.0);
    }

    #[test]
    fn chain_mul_with_rectangular_factors() {
        // Shape changes along the chain force the ping-pong to fall back
        // to fresh allocations without corrupting the running product.
        let a = test_matrix(5, 7, 43);
        let b = test_matrix(7, 3, 44);
        let c = test_matrix(3, 6, 45);
        let d = test_matrix(6, 6, 46);
        let abcd = chain_mul(Par::Seq, &[&a, &b, &c, &d]);
        assert_close(&abcd, &mul(&mul(&mul(&a, &b), &c), &d), 1e-13);
    }

    #[test]
    fn flops_are_counted() {
        use fsi_runtime::trace;
        let _lock = trace::test_lock();
        trace::set_level(fsi_runtime::TraceLevel::Kernels);
        let span = trace::span("gemm-test");
        let a = test_matrix(10, 20, 50);
        let b = test_matrix(20, 30, 51);
        let _ = mul(&a, &b);
        let stats = span.finish();
        trace::set_level(fsi_runtime::TraceLevel::Off);
        trace::clear();
        assert_eq!(stats.flops, 2 * 10 * 20 * 30);
    }

    #[test]
    fn test_matrix_is_deterministic_and_bounded() {
        let a = test_matrix(5, 5, 7);
        let b = test_matrix(5, 5, 7);
        assert_eq!(a, b);
        assert!(a.max_abs() <= 1.0);
        let c = test_matrix(5, 5, 8);
        assert_ne!(a, c);
    }
}
