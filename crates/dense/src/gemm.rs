//! Level-3 BLAS: general matrix-matrix multiply.
//!
//! `GEMM` dominates the FSI algorithm — the clustering stage is a chain of
//! `B` products, the wrapping stage multiplies each produced block by a `B`
//! factor, and BSOFI's `R⁻¹` and `X·Qᵀ` phases are block products. The paper
//! highlights that FSI performance tracks DGEMM throughput, so this kernel
//! is the crate's hot spot.
//!
//! The no-transpose path is cache-blocked (`MC × KC` panels of A against
//! `KC`-deep strips of B) with a 4-column rank-1 micro-kernel whose inner
//! loop is a contiguous fused multiply-add stream over a column of A, which
//! LLVM vectorizes. Parallelism splits C into column chunks, one per pool
//! thread — disjoint `MatMut`s, so no synchronization is needed inside.
//!
//! Transposed paths (`AᵀB`, `ABᵀ`, `AᵀBᵀ`) use dot/axpy formulations; they
//! appear only in low-volume places (Householder applications use the
//! dedicated blocked reflector kernels in [`crate::qr`] instead).

use crate::matrix::{MatMut, MatRef, Matrix};
use fsi_runtime::flops;
use fsi_runtime::{parallel_for, Par, Schedule};

/// Transposition selector for [`gemm_op`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the operand.
    Trans,
}

impl Op {
    /// Logical row count of `op(A)`.
    fn rows(self, a: MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.rows(),
            Op::Trans => a.cols(),
        }
    }
    /// Logical column count of `op(A)`.
    fn cols(self, a: MatRef<'_>) -> usize {
        match self {
            Op::NoTrans => a.cols(),
            Op::Trans => a.rows(),
        }
    }
}

/// Cache block: rows of A per panel.
const MC: usize = 128;
/// Cache block: depth per panel.
const KC: usize = 192;

/// `C := alpha·A·B + beta·C` (both operands as stored).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm(par: Par<'_>, alpha: f64, a: MatRef<'_>, b: MatRef<'_>, beta: f64, c: MatMut<'_>) {
    gemm_op(par, alpha, Op::NoTrans, a, Op::NoTrans, b, beta, c)
}

/// `C := alpha·op(A)·op(B) + beta·C`.
///
/// # Panics
/// Panics on dimension mismatch.
#[allow(clippy::too_many_arguments)] // mirrors BLAS dgemm's argument list
pub fn gemm_op(
    par: Par<'_>,
    alpha: f64,
    opa: Op,
    a: MatRef<'_>,
    opb: Op,
    b: MatRef<'_>,
    beta: f64,
    c: MatMut<'_>,
) {
    gemm_op_impl(true, par, alpha, opa, a, opb, b, beta, c)
}

/// [`gemm_op`] without flop accounting or a kernel span: for kernels (QR's
/// LARFB) that already charged their own analytic total and use gemm as an
/// internal detail — charging here too would double-count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_op_uncounted(
    par: Par<'_>,
    alpha: f64,
    opa: Op,
    a: MatRef<'_>,
    opb: Op,
    b: MatRef<'_>,
    beta: f64,
    c: MatMut<'_>,
) {
    gemm_op_impl(false, par, alpha, opa, a, opb, b, beta, c)
}

#[allow(clippy::too_many_arguments)]
fn gemm_op_impl(
    count: bool,
    par: Par<'_>,
    alpha: f64,
    opa: Op,
    a: MatRef<'_>,
    opb: Op,
    b: MatRef<'_>,
    beta: f64,
    mut c: MatMut<'_>,
) {
    let m = opa.rows(a);
    let k = opa.cols(a);
    let n = opb.cols(b);
    assert_eq!(opb.rows(b), k, "gemm: inner dimensions disagree");
    assert_eq!(c.rows(), m, "gemm: C row count mismatch");
    assert_eq!(c.cols(), n, "gemm: C column count mismatch");
    if m == 0 || n == 0 {
        return;
    }

    // Scale C by beta up front so the accumulation kernels only add.
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        c.scale(beta);
    }
    if k == 0 || alpha == 0.0 {
        return;
    }

    // Open before charging so the flops land on this kernel's span (the
    // guard is a no-op below FSI_TRACE=2).
    let _kernel = if count {
        let kernel = fsi_runtime::trace::kernel_span("gemm");
        flops::add_flops(flops::counts::gemm(m, n, k));
        fsi_runtime::trace::charge_bytes(8 * (m * k + k * n + 2 * m * n) as u64);
        Some(kernel)
    } else {
        None
    };

    let threads = par.threads().min(n).max(1);
    if threads <= 1 {
        accumulate(alpha, opa, a, opb, b, c);
        return;
    }
    let pool = par.pool().expect("threads > 1 implies pool");
    let chunk = n.div_ceil(threads);
    let c_chunks = c.split_cols_chunks(chunk);
    pool.scope(|s| {
        for (t, mut cc) in c_chunks.into_iter().enumerate() {
            let j0 = t * chunk;
            let bc = match opb {
                Op::NoTrans => b.submatrix(0, j0, k, cc.cols()),
                Op::Trans => b.submatrix(j0, 0, cc.cols(), k),
            };
            s.spawn(move || accumulate(alpha, opa, a, opb, bc, cc.rb_mut()));
        }
    });
}

/// Dispatches to the per-shape accumulation kernel: `C += alpha·op(A)·op(B)`.
fn accumulate(alpha: f64, opa: Op, a: MatRef<'_>, opb: Op, b: MatRef<'_>, c: MatMut<'_>) {
    match (opa, opb) {
        (Op::NoTrans, Op::NoTrans) => acc_nn(alpha, a, b, c),
        (Op::Trans, Op::NoTrans) => acc_tn(alpha, a, b, c),
        (Op::NoTrans, Op::Trans) => acc_nt(alpha, a, b, c),
        (Op::Trans, Op::Trans) => acc_tt(alpha, a, b, c),
    }
}

/// Blocked `C += alpha·A·B`, the hot path.
fn acc_nn(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let mut ic = 0;
        while ic < m {
            let mc = MC.min(m - ic);
            micro_nn(
                alpha,
                a.submatrix(ic, pc, mc, kc),
                b.submatrix(pc, 0, kc, n),
                c.rb_mut().submatrix(ic, 0, mc, n),
            );
            ic += mc;
        }
        pc += kc;
    }
}

/// Rank-1 micro-kernel over 4 columns of C at a time.
///
/// For each quad of C columns and each depth index `p`, streams column `p`
/// of A once against four B scalars. The inner loop is contiguous in both
/// A's column and C's columns, so it vectorizes.
fn micro_nn(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut j = 0;
    while j + 4 <= n {
        // SAFETY: per-column slices are disjoint (j..j+4); raw pointers are
        // needed because MatMut cannot hand out four simultaneous &mut
        // columns. Bounds: j + 3 < n and every slice has length m.
        unsafe {
            let c0 = std::slice::from_raw_parts_mut(c.rb_mut().col_mut(j).as_mut_ptr(), m);
            let c1 = std::slice::from_raw_parts_mut(c.rb_mut().col_mut(j + 1).as_mut_ptr(), m);
            let c2 = std::slice::from_raw_parts_mut(c.rb_mut().col_mut(j + 2).as_mut_ptr(), m);
            let c3 = std::slice::from_raw_parts_mut(c.rb_mut().col_mut(j + 3).as_mut_ptr(), m);
            for p in 0..k {
                let ap = a.col(p);
                let b0 = alpha * b.at_unchecked(p, j);
                let b1 = alpha * b.at_unchecked(p, j + 1);
                let b2 = alpha * b.at_unchecked(p, j + 2);
                let b3 = alpha * b.at_unchecked(p, j + 3);
                for i in 0..m {
                    let av = *ap.get_unchecked(i);
                    *c0.get_unchecked_mut(i) += av * b0;
                    *c1.get_unchecked_mut(i) += av * b1;
                    *c2.get_unchecked_mut(i) += av * b2;
                    *c3.get_unchecked_mut(i) += av * b3;
                }
            }
        }
        j += 4;
    }
    // Remainder columns: one safe axpy stream per column.
    while j < n {
        let mut cj_view = c.rb_mut().submatrix(0, j, m, 1);
        let cj = cj_view.col_mut(0);
        for p in 0..k {
            crate::blas::axpy(alpha * b.at(p, j), a.col(p), cj);
        }
        j += 1;
    }
}

/// `C += alpha·Aᵀ·B` via dot products down contiguous columns.
fn acc_tn(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, n) = (c.rows(), c.cols());
    for j in 0..n {
        let bj = b.col(j);
        for i in 0..m {
            *c.at_mut(i, j) += alpha * crate::blas::dot(a.col(i), bj);
        }
    }
}

/// `C += alpha·A·Bᵀ` via axpy streams over columns of A.
fn acc_nt(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, n) = (c.rows(), c.cols());
    let k = a.cols();
    for j in 0..n {
        let mut cj_view = c.rb_mut().submatrix(0, j, m, 1);
        let cj = cj_view.col_mut(0);
        for p in 0..k {
            crate::blas::axpy(alpha * b.at(j, p), a.col(p), cj);
        }
    }
}

/// `C += alpha·Aᵀ·Bᵀ` (rare; strided dot).
fn acc_tt(alpha: f64, a: MatRef<'_>, b: MatRef<'_>, mut c: MatMut<'_>) {
    let (m, n) = (c.rows(), c.cols());
    let k = a.rows();
    for j in 0..n {
        for i in 0..m {
            let mut s = 0.0;
            for p in 0..k {
                s += a.at(p, i) * b.at(j, p);
            }
            *c.at_mut(i, j) += alpha * s;
        }
    }
}

/// Convenience: allocates and returns `A·B` (sequential).
pub fn mul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(Par::Seq, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

/// Convenience: allocates and returns `A·B` using the given parallelism.
pub fn mul_par(par: Par<'_>, a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm(par, 1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
    c
}

/// Multiplies a chain `M_1 · M_2 · ⋯ · M_p` left to right, optionally
/// parallelizing each product. Used by the clustering stage and by the
/// explicit-inversion baseline's matrix chains.
///
/// # Panics
/// Panics if the chain is empty or shapes are incompatible.
pub fn chain_mul(par: Par<'_>, factors: &[&Matrix]) -> Matrix {
    let (first, rest) = factors.split_first().expect("chain_mul needs a factor");
    let mut acc = (*first).clone();
    for f in rest {
        acc = mul_par(par, &acc, f);
    }
    acc
}

/// A deterministic splitmix64-based pseudo-random matrix for tests and
/// benches, without requiring a rand dependency in this crate.
pub fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        // Map to (-1, 1).
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    };
    Matrix::from_fn(rows, cols, |_, _| next())
}

/// Schedule used when callers parallelize *over* many independent gemms
/// instead of inside one: re-exported for symmetry in the FSI drivers.
pub const OUTER_SCHEDULE: Schedule = Schedule::Dynamic(1);

/// Runs `n_tasks` independent closures, each performing its own sequential
/// gemms — the "parallel outside, sequential inside" pattern of the FSI
/// OpenMP mode.
pub fn parallel_tasks<F: Fn(usize) + Sync>(par: Par<'_>, n_tasks: usize, f: F) {
    parallel_for(par, n_tasks, OUTER_SCHEDULE, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsi_runtime::ThreadPool;

    fn naive(opa: Op, a: &Matrix, opb: Op, b: &Matrix) -> Matrix {
        let at = match opa {
            Op::NoTrans => a.clone(),
            Op::Trans => a.transpose(),
        };
        let bt = match opb {
            Op::NoTrans => b.clone(),
            Op::Trans => b.transpose(),
        };
        let mut c = Matrix::zeros(at.rows(), bt.cols());
        for i in 0..at.rows() {
            for j in 0..bt.cols() {
                let mut s = 0.0;
                for p in 0..at.cols() {
                    s += at[(i, p)] * bt[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        let mut d = a.clone();
        d.sub_assign(b);
        let scale = b.max_abs().max(1.0);
        assert!(
            d.max_abs() <= tol * scale,
            "matrices differ: |diff|={} scale={}",
            d.max_abs(),
            scale
        );
    }

    #[test]
    fn nn_matches_naive_on_odd_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 13, 9),
            (130, 200, 65),
            (64, 64, 64),
        ] {
            let a = test_matrix(m, k, 1);
            let b = test_matrix(k, n, 2);
            let c = mul(&a, &b);
            assert_close(&c, &naive(Op::NoTrans, &a, Op::NoTrans, &b), 1e-13);
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        let a = test_matrix(8, 6, 3);
        let b = test_matrix(6, 10, 4);
        let c0 = test_matrix(8, 10, 5);
        for &(alpha, beta) in &[(1.0, 0.0), (2.0, 1.0), (-0.5, 0.25), (0.0, 2.0), (1.0, 1.0)] {
            let mut c = c0.clone();
            gemm(Par::Seq, alpha, a.as_ref(), b.as_ref(), beta, c.as_mut());
            let mut want = naive(Op::NoTrans, &a, Op::NoTrans, &b);
            want.scale(alpha);
            let mut scaled_c0 = c0.clone();
            scaled_c0.scale(beta);
            want.add_assign(&scaled_c0);
            assert_close(&c, &want, 1e-13);
        }
    }

    #[test]
    fn transposed_paths_match_naive() {
        let cases = [
            (Op::Trans, Op::NoTrans),
            (Op::NoTrans, Op::Trans),
            (Op::Trans, Op::Trans),
        ];
        for (opa, opb) in cases {
            let (m, k, n) = (9, 7, 11);
            let a = match opa {
                Op::NoTrans => test_matrix(m, k, 10),
                Op::Trans => test_matrix(k, m, 10),
            };
            let b = match opb {
                Op::NoTrans => test_matrix(k, n, 11),
                Op::Trans => test_matrix(n, k, 11),
            };
            let mut c = Matrix::zeros(m, n);
            gemm_op(
                Par::Seq,
                1.0,
                opa,
                a.as_ref(),
                opb,
                b.as_ref(),
                0.0,
                c.as_mut(),
            );
            assert_close(&c, &naive(opa, &a, opb, &b), 1e-13);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ThreadPool::new(4);
        let a = test_matrix(150, 90, 20);
        let b = test_matrix(90, 170, 21);
        let seq = mul(&a, &b);
        let par = mul_par(Par::Pool(&pool), &a, &b);
        assert_close(&par, &seq, 1e-14);
        // Also with transposes.
        let mut c1 = Matrix::zeros(90, 170);
        let mut c2 = Matrix::zeros(90, 170);
        gemm_op(
            Par::Seq,
            1.0,
            Op::Trans,
            a.as_ref(),
            Op::NoTrans,
            seq.as_ref(),
            0.0,
            c1.as_mut(),
        );
        gemm_op(
            Par::Pool(&pool),
            1.0,
            Op::Trans,
            a.as_ref(),
            Op::NoTrans,
            seq.as_ref(),
            0.0,
            c2.as_mut(),
        );
        assert_close(&c1, &c2, 1e-14);
    }

    #[test]
    fn gemm_on_submatrix_views() {
        let a = test_matrix(12, 12, 30);
        let b = test_matrix(12, 12, 31);
        let mut c = Matrix::zeros(12, 12);
        // Multiply the centre 6×6 blocks only.
        gemm(
            Par::Seq,
            1.0,
            a.view(3, 3, 6, 6),
            b.view(3, 3, 6, 6),
            0.0,
            c.view_mut(3, 3, 6, 6),
        );
        let ab = mul(&a.block(3, 3, 6, 6), &b.block(3, 3, 6, 6));
        assert_close(&c.block(3, 3, 6, 6), &ab, 1e-13);
        assert_eq!(c[(0, 0)], 0.0, "outside the target block untouched");
    }

    #[test]
    fn empty_k_only_applies_beta() {
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 3);
        let mut c = Matrix::from_fn(3, 3, |_, _| 2.0);
        gemm(Par::Seq, 1.0, a.as_ref(), b.as_ref(), 0.5, c.as_mut());
        assert_eq!(c[(1, 1)], 1.0);
    }

    #[test]
    fn chain_mul_left_to_right() {
        let a = test_matrix(4, 4, 40);
        let b = test_matrix(4, 4, 41);
        let c = test_matrix(4, 4, 42);
        let abc = chain_mul(Par::Seq, &[&a, &b, &c]);
        assert_close(&abc, &mul(&mul(&a, &b), &c), 1e-13);
        let single = chain_mul(Par::Seq, &[&a]);
        assert_close(&single, &a, 0.0);
    }

    #[test]
    fn flops_are_counted() {
        use fsi_runtime::trace;
        let _lock = trace::test_lock();
        trace::set_level(fsi_runtime::TraceLevel::Kernels);
        let span = trace::span("gemm-test");
        let a = test_matrix(10, 20, 50);
        let b = test_matrix(20, 30, 51);
        let _ = mul(&a, &b);
        let stats = span.finish();
        trace::set_level(fsi_runtime::TraceLevel::Off);
        trace::clear();
        assert_eq!(stats.flops, 2 * 10 * 20 * 30);
    }

    #[test]
    fn test_matrix_is_deterministic_and_bounded() {
        let a = test_matrix(5, 5, 7);
        let b = test_matrix(5, 5, 7);
        assert_eq!(a, b);
        assert!(a.max_abs() <= 1.0);
        let c = test_matrix(5, 5, 8);
        assert_ne!(a, c);
    }
}
