//! Matrix norms and error metrics.

use crate::matrix::Matrix;

/// One-norm: maximum absolute column sum. Drives the scaling choice in the
/// matrix exponential.
pub fn norm1(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        let s: f64 = a.as_ref().col(j).iter().map(|x| x.abs()).sum();
        best = best.max(s);
    }
    best
}

/// Infinity-norm: maximum absolute row sum.
pub fn norm_inf(a: &Matrix) -> f64 {
    let mut sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, &x) in a.as_ref().col(j).iter().enumerate() {
            sums[i] += x.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Frobenius norm.
pub fn frobenius(a: &Matrix) -> f64 {
    a.as_ref().frobenius_norm()
}

/// Relative Frobenius distance `‖A − B‖_F / max(‖B‖_F, ε)` — the metric the
/// paper's §V-A validation uses per block.
pub fn rel_error(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "rel_error shapes"
    );
    let mut d = a.clone();
    d.sub_assign(b);
    frobenius(&d) / frobenius(b).max(f64::MIN_POSITIVE)
}

/// One-norm condition number computed from an explicit inverse — O(n³),
/// intended for validation harnesses (the paper quotes κ(M) ≈ 10⁵ for its
/// test matrix).
pub fn cond1(a: &Matrix) -> crate::error::Result<f64> {
    let inv = crate::lu::inverse(a)?;
    Ok(norm1(a) * norm1(&inv))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_known_matrix() {
        // [[1, -2], [3, 4]] column-major.
        let a = Matrix::from_col_major(2, 2, vec![1.0, 3.0, -2.0, 4.0]);
        assert_eq!(norm1(&a), 6.0); // max(|1|+|3|, |−2|+|4|)
        assert_eq!(norm_inf(&a), 7.0); // max(1+2, 3+4)
        assert!((frobenius(&a) - (30.0f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let a = crate::gemm::test_matrix(5, 5, 1);
        assert_eq!(rel_error(&a, &a), 0.0);
        let mut b = a.clone();
        b.scale(1.0 + 1e-8);
        let e = rel_error(&b, &a);
        assert!(e > 0.0 && e < 1e-7);
    }

    #[test]
    fn cond_of_identity_is_one() {
        let c = cond1(&Matrix::identity(10)).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cond_grows_with_scaling_imbalance() {
        let d = Matrix::diag(&[1.0, 1e-6]);
        let c = cond1(&d).unwrap();
        assert!((c - 1e6).abs() / 1e6 < 1e-10);
    }
}
