//! Equivalence properties of the batched small-matrix engine and the
//! kernel tiers.
//!
//! Two contracts from `fsi_dense::batch` / `fsi_dense::kernel` are pinned
//! here:
//!
//! 1. **Batched == looped, bitwise.** `gemm_batched` must reproduce a loop
//!    of `gemm_op` calls bit for bit — for every Op combination, remainder
//!    shape (sizes not multiples of MR/NR), batch size, operand sharing
//!    mode, and alpha/beta combination, on both the small fast path and
//!    the large blocked fallback.
//! 2. **Tier equivalence.** The AVX-512 and AVX2 kernels are bitwise
//!    identical (same per-element accumulation order, same unfused
//!    writeback); the scalar tier (unfused accumulation) agrees to 1e-13
//!    relative. Absent ISAs are skipped with a note, never failed.

use fsi_dense::{
    available_tiers, chain_mul, gemm_batched, gemm_op, mul, test_matrix, with_tier, BatchOperand,
    Matrix, Op, Tier,
};
use fsi_runtime::{Par, ThreadPool};
use proptest::prelude::*;

const ALL_OPS: [(Op, Op); 4] = [
    (Op::NoTrans, Op::NoTrans),
    (Op::Trans, Op::NoTrans),
    (Op::NoTrans, Op::Trans),
    (Op::Trans, Op::Trans),
];

const ALPHA_BETA: [(f64, f64); 5] = [(1.0, 0.0), (2.0, 1.0), (-0.5, 0.25), (1.0, 1.0), (0.0, 2.0)];

/// Operands shaped so `op(A)` is `m × k` and `op(B)` is `k × n`.
fn operand_pair(m: usize, k: usize, n: usize, opa: Op, opb: Op, seed: u64) -> (Matrix, Matrix) {
    let a = match opa {
        Op::NoTrans => test_matrix(m, k, seed),
        Op::Trans => test_matrix(k, m, seed),
    };
    let b = match opb {
        Op::NoTrans => test_matrix(k, n, seed.wrapping_add(1)),
        Op::Trans => test_matrix(n, k, seed.wrapping_add(1)),
    };
    (a, b)
}

/// Runs one batched-vs-looped comparison and asserts bitwise equality.
/// `share_a`/`share_b` pick `Shared` (factor 0 used for every item) vs
/// `Each`.
#[allow(clippy::too_many_arguments)]
fn check_batch(
    par: Par<'_>,
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    opa: Op,
    opb: Op,
    alpha: f64,
    beta: f64,
    share_a: bool,
    share_b: bool,
    seed: u64,
) {
    let pairs: Vec<(Matrix, Matrix)> = (0..batch)
        .map(|i| operand_pair(m, k, n, opa, opb, seed.wrapping_add(100 * i as u64)))
        .collect();
    let a_of = |i: usize| &pairs[if share_a { 0 } else { i }].0;
    let b_of = |i: usize| &pairs[if share_b { 0 } else { i }].1;

    // Seed C with data so beta paths are exercised.
    let c0: Vec<Matrix> = (0..batch)
        .map(|i| test_matrix(m, n, seed.wrapping_add(7 + i as u64)))
        .collect();

    // Reference: one gemm_op per item.
    let mut want = c0.clone();
    for (i, ci) in want.iter_mut().enumerate() {
        gemm_op(
            Par::Seq,
            alpha,
            opa,
            a_of(i).as_ref(),
            opb,
            b_of(i).as_ref(),
            beta,
            ci.as_mut(),
        );
    }

    // Batched.
    let mut got = c0;
    {
        let a_refs: Vec<_> = (0..batch).map(|i| a_of(i).as_ref()).collect();
        let b_refs: Vec<_> = (0..batch).map(|i| b_of(i).as_ref()).collect();
        let a_arg = if share_a {
            BatchOperand::Shared(a_refs[0])
        } else {
            BatchOperand::Each(&a_refs)
        };
        let b_arg = if share_b {
            BatchOperand::Shared(b_refs[0])
        } else {
            BatchOperand::Each(&b_refs)
        };
        let mut c_muts: Vec<_> = got.iter_mut().map(|c| c.as_mut()).collect();
        gemm_batched(par, alpha, opa, a_arg, opb, b_arg, beta, &mut c_muts);
    }

    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g.as_slice(),
            w.as_slice(),
            "item {i} of {batch} not bitwise equal \
             (m={m} k={k} n={n} opa={opa:?} opb={opb:?} alpha={alpha} beta={beta})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random small-path shapes, batch sizes, ops, scalars, sharing modes.
    #[test]
    fn batched_matches_looped_bitwise(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        batch in 1usize..=33,
        op_idx in 0usize..4,
        ab_idx in 0usize..5,
        share_a in any::<bool>(),
        share_b in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let (opa, opb) = ALL_OPS[op_idx];
        let (alpha, beta) = ALPHA_BETA[ab_idx];
        check_batch(Par::Seq, m, k, n, batch, opa, opb, alpha, beta, share_a, share_b, seed);
    }

    /// The pool-partitioned batch must be bitwise equal to sequential
    /// (each item's product is computed by the same sequential kernels,
    /// whichever worker runs it).
    #[test]
    fn pool_batched_matches_sequential_bitwise(
        batch in 1usize..=17,
        op_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let (opa, opb) = ALL_OPS[op_idx];
        let pool = ThreadPool::new(4);
        check_batch(Par::Pool(&pool), 24, 24, 24, batch, opa, opb, 1.0, 0.0, false, false, seed);
    }
}

/// Deterministic remainder-shape sweep: every combination of full/partial
/// register tiles for both the 8-row and 16-row tiers, depths straddling
/// nothing (small path) and shapes crossing into the blocked fallback.
#[test]
fn remainder_and_fallback_shapes_bitwise() {
    // (m, k, n): 8/16 boundaries, primes, the CLS hot sizes, and
    // large-fallback shapes (> MC or > KC on some axis).
    let shapes = [
        (1, 1, 1),
        (8, 8, 8),
        (13, 7, 5),
        (16, 16, 16),
        (17, 16, 9),
        (15, 9, 4),
        (33, 29, 31),
        (32, 32, 32),
        (64, 64, 64),
        (96, 50, 96),
        (97, 30, 40),  // m > MC: blocked fallback
        (40, 300, 40), // k > KC: blocked fallback
    ];
    for &(m, k, n) in &shapes {
        for (opa, opb) in ALL_OPS {
            for &batch in &[1usize, 2, 3, 8] {
                check_batch(
                    Par::Seq,
                    m,
                    k,
                    n,
                    batch,
                    opa,
                    opb,
                    1.0,
                    0.0,
                    false,
                    batch > 1,
                    (m * 31 + k * 7 + n) as u64,
                );
            }
        }
    }
}

/// `chain_mul`'s small-chain fast path must match an explicit left-to-right
/// loop of `mul` calls bitwise, including rectangular chains.
#[test]
fn chain_fast_path_bitwise() {
    let chains: [&[(usize, usize)]; 3] = [
        &[(24, 24), (24, 24), (24, 24), (24, 24)],
        &[(13, 7), (7, 3), (3, 6), (6, 6)],
        &[(64, 64), (64, 64)],
    ];
    for (ci, shapes) in chains.iter().enumerate() {
        let ms: Vec<Matrix> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| test_matrix(r, c, (ci * 10 + i) as u64))
            .collect();
        let refs: Vec<&Matrix> = ms.iter().collect();
        let fast = chain_mul(Par::Seq, &refs);
        let mut slow = ms[0].clone();
        for f in &ms[1..] {
            slow = mul(&slow, f);
        }
        assert_eq!(fast.as_slice(), slow.as_slice(), "chain {ci} differs");
    }
}

/// Cross-tier equivalence: AVX-512 and AVX2 bitwise identical, scalar to
/// 1e-13 relative. Runs every pairing the host supports; absent ISAs are
/// noted and skipped.
#[test]
fn kernel_tiers_agree() {
    let tiers = available_tiers();
    for t in [Tier::Avx2, Tier::Avx512] {
        if !tiers.contains(&t) {
            eprintln!(
                "note: kernel tier {} unavailable on this host — \
                 cross-tier check for it skipped",
                t.name()
            );
        }
    }
    // One representative workload per route: batched NN (direct kernels),
    // batched TN (packed kernels), plain gemm (blocked engine), chain.
    let run_all = || -> Vec<Matrix> {
        let mut outs = Vec::new();
        for &(m, k, n) in &[(17, 13, 9), (32, 32, 32), (64, 64, 64), (96, 40, 50)] {
            for (opa, opb) in [(Op::NoTrans, Op::NoTrans), (Op::Trans, Op::NoTrans)] {
                let pairs: Vec<(Matrix, Matrix)> = (0..5)
                    .map(|i| operand_pair(m, k, n, opa, opb, 1000 + i))
                    .collect();
                let a_refs: Vec<_> = pairs.iter().map(|p| p.0.as_ref()).collect();
                let b_refs: Vec<_> = pairs.iter().map(|p| p.1.as_ref()).collect();
                let mut out: Vec<Matrix> = (0..5).map(|_| Matrix::zeros(m, n)).collect();
                let mut c_muts: Vec<_> = out.iter_mut().map(|c| c.as_mut()).collect();
                gemm_batched(
                    Par::Seq,
                    1.0,
                    opa,
                    BatchOperand::Each(&a_refs),
                    opb,
                    BatchOperand::Each(&b_refs),
                    0.0,
                    &mut c_muts,
                );
                drop(c_muts);
                outs.extend(out);
            }
            // The blocked engine and the chain fast path under this tier.
            let a = test_matrix(m, k, 2000);
            let b = test_matrix(k, n, 2001);
            outs.push(mul(&a, &b));
            if m == n && k == m {
                let f1 = test_matrix(m, m, 2002);
                let f2 = test_matrix(m, m, 2003);
                outs.push(chain_mul(Par::Seq, &[&f1, &f2, &a]));
            }
        }
        outs
    };
    let per_tier: Vec<(Tier, Vec<Matrix>)> =
        tiers.iter().map(|&t| (t, with_tier(t, run_all))).collect();
    let (base_tier, base) = &per_tier[0];
    assert_eq!(*base_tier, Tier::Scalar);
    for (t, outs) in &per_tier[1..] {
        for (i, (got, want)) in outs.iter().zip(base).enumerate() {
            // Vector tiers vs scalar: FMA contraction changes rounding,
            // bounded well below 1e-13 relative at these sizes.
            let scale = want.max_abs().max(1.0);
            let mut diff = got.clone();
            diff.sub_assign(want);
            assert!(
                diff.max_abs() <= 1e-13 * scale,
                "tier {} vs scalar: output {i} differs by {} (scale {scale})",
                t.name(),
                diff.max_abs()
            );
        }
    }
    // AVX-512 vs AVX2: same FMA chains, same writeback — bitwise.
    if let (Some(a2), Some(a5)) = (
        per_tier.iter().find(|(t, _)| *t == Tier::Avx2),
        per_tier.iter().find(|(t, _)| *t == Tier::Avx512),
    ) {
        for (i, (x, y)) in a2.1.iter().zip(&a5.1).enumerate() {
            assert_eq!(
                x.as_slice(),
                y.as_slice(),
                "avx2 and avx512 must be bitwise identical (output {i})"
            );
        }
    }
}

/// The thread-local tier override must not leak: after `with_tier`, the
/// process default is back in force.
#[test]
fn with_tier_restores_dispatch() {
    let before = fsi_dense::active_tier();
    let a = test_matrix(20, 20, 5);
    let b = test_matrix(20, 20, 6);
    let under = with_tier(Tier::Scalar, || {
        assert_eq!(fsi_dense::active_tier(), Tier::Scalar);
        mul(&a, &b)
    });
    assert_eq!(fsi_dense::active_tier(), before);
    let after = with_tier(Tier::Scalar, || mul(&a, &b));
    assert_eq!(under.as_slice(), after.as_slice());
}
