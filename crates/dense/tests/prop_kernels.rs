//! Property-based tests of the dense kernels: factorization residuals,
//! orthogonality, solve identities, and exponential laws on arbitrary
//! well-conditioned inputs.

use fsi_dense::{expm, gemm_op, geqrf, getrf, mul, rel_error, solve, test_matrix, Matrix, Op};
use fsi_runtime::Par;
use proptest::prelude::*;

/// Random well-conditioned square matrix (diagonally dominated).
fn well_conditioned(n: usize, seed: u64) -> Matrix {
    let mut a = test_matrix(n, n, seed);
    a.add_diag(n as f64 * 0.5 + 1.0);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lu_solve_residual_small(n in 1usize..40, nrhs in 1usize..6, seed in any::<u64>()) {
        let a = well_conditioned(n, seed);
        let b = test_matrix(n, nrhs, seed ^ 1);
        let x = solve(&a, &b).expect("well conditioned");
        let mut r = mul(&a, &x);
        r.sub_assign(&b);
        prop_assert!(r.max_abs() < 1e-9 * (n as f64 + 1.0));
    }

    #[test]
    fn inverse_composes_to_identity(n in 1usize..30, seed in any::<u64>()) {
        let a = well_conditioned(n, seed);
        let inv = fsi_dense::inverse(&a).expect("well conditioned");
        let mut p = mul(&a, &inv);
        p.add_diag(-1.0);
        prop_assert!(p.max_abs() < 1e-9 * (n as f64 + 1.0));
        // And the determinant of A·A⁻¹ is det(A)·det(A⁻¹) ≈ 1.
        let da = getrf(a).unwrap().det();
        let di = getrf(inv).unwrap().det();
        prop_assert!((da * di - 1.0).abs() < 1e-6);
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthogonal(
        m in 1usize..36,
        extra in 0usize..12,
        seed in any::<u64>(),
    ) {
        let rows = m + extra; // rows >= cols
        let a = test_matrix(rows, m, seed);
        let f = geqrf(a.clone());
        let q = f.q();
        // QᵀQ = I.
        let mut qtq = Matrix::zeros(rows, rows);
        gemm_op(Par::Seq, 1.0, Op::Trans, q.as_ref(), Op::NoTrans, q.as_ref(), 0.0, qtq.as_mut());
        qtq.add_diag(-1.0);
        prop_assert!(qtq.max_abs() < 1e-11 * (rows as f64 + 1.0));
        // Q·R = A (R embedded in rows × m).
        let mut r_full = Matrix::zeros(rows, m);
        for i in 0..m {
            for j in i..m {
                r_full[(i, j)] = f.packed()[(i, j)];
            }
        }
        let mut resid = mul(&q, &r_full);
        resid.sub_assign(&a);
        prop_assert!(resid.max_abs() < 1e-11 * (rows as f64 + 1.0));
    }

    #[test]
    fn solve_right_is_right_inverse(n in 1usize..25, rows in 1usize..6, seed in any::<u64>()) {
        let a = well_conditioned(n, seed);
        let b = test_matrix(rows, n, seed ^ 2);
        let f = getrf(a.clone()).unwrap();
        let x = f.solve_right(&b);
        let mut r = mul(&x, &a);
        r.sub_assign(&b);
        prop_assert!(r.max_abs() < 1e-9 * (n as f64 + 1.0));
    }

    #[test]
    fn gemm_is_linear_in_alpha(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in any::<u64>()) {
        let a = test_matrix(m, k, seed);
        let b = test_matrix(k, n, seed ^ 3);
        let ab = mul(&a, &b);
        let mut c2 = Matrix::zeros(m, n);
        fsi_dense::gemm(Par::Seq, 2.0, a.as_ref(), b.as_ref(), 0.0, c2.as_mut());
        let mut want = ab.clone();
        want.scale(2.0);
        prop_assert!(rel_error(&c2, &want) < 1e-13);
    }

    #[test]
    fn packed_gemm_matches_naive_triple_loop(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        a_trans in any::<bool>(),
        b_trans in any::<bool>(),
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        // The packed/register-blocked engine against the textbook triple
        // loop, over all four Op combos, arbitrary alpha/beta, and shapes
        // small enough to hit every MR/NR remainder case.
        let (ar, ac) = if a_trans { (k, m) } else { (m, k) };
        let (br, bc) = if b_trans { (n, k) } else { (k, n) };
        let a = test_matrix(ar, ac, seed);
        let b = test_matrix(br, bc, seed ^ 5);
        let c0 = test_matrix(m, n, seed ^ 6);
        let mut want = c0.clone();
        for j in 0..n {
            for i in 0..m {
                let mut s = 0.0;
                for p in 0..k {
                    let av = if a_trans { a[(p, i)] } else { a[(i, p)] };
                    let bv = if b_trans { b[(j, p)] } else { b[(p, j)] };
                    s += av * bv;
                }
                want[(i, j)] = beta * want[(i, j)] + alpha * s;
            }
        }
        let opa = if a_trans { Op::Trans } else { Op::NoTrans };
        let opb = if b_trans { Op::Trans } else { Op::NoTrans };
        let mut got = c0.clone();
        gemm_op(Par::Seq, alpha, opa, a.as_ref(), opb, b.as_ref(), beta, got.as_mut());
        for j in 0..n {
            for i in 0..m {
                let d = (got[(i, j)] - want[(i, j)]).abs();
                prop_assert!(
                    d < 1e-13 * (1.0 + want[(i, j)].abs() + (k as f64)),
                    "({i},{j}): packed {} vs naive {}",
                    got[(i, j)],
                    want[(i, j)]
                );
            }
        }
    }

    #[test]
    fn gemm_transpose_consistency(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in any::<u64>()) {
        // (A·B)ᵀ = Bᵀ·Aᵀ via the TT path.
        let a = test_matrix(m, k, seed);
        let b = test_matrix(k, n, seed ^ 4);
        let ab_t = mul(&a, &b).transpose();
        let mut tt = Matrix::zeros(n, m);
        gemm_op(Par::Seq, 1.0, Op::Trans, b.as_ref(), Op::Trans, a.as_ref(), 0.0, tt.as_mut());
        prop_assert!(rel_error(&tt, &ab_t) < 1e-12);
    }

    #[test]
    fn expm_additivity_for_commuting(n in 1usize..10, seed in any::<u64>()) {
        // e^{sA}·e^{tA} = e^{(s+t)A}: commuting arguments.
        let mut a = test_matrix(n, n, seed);
        a.scale(0.2);
        let mut a2 = a.clone();
        a2.scale(2.0);
        let e1 = expm(&a).unwrap();
        let e12 = mul(&e1, &e1);
        let e2 = expm(&a2).unwrap();
        prop_assert!(rel_error(&e12, &e2) < 1e-11);
    }

    #[test]
    fn expm_determinant_is_exp_trace(n in 1usize..8, seed in any::<u64>()) {
        // det e^A = e^{tr A}.
        let mut a = test_matrix(n, n, seed);
        a.scale(0.3);
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let e = expm(&a).unwrap();
        let det = getrf(e).unwrap().det();
        prop_assert!((det - trace.exp()).abs() < 1e-9 * trace.exp().max(1.0));
    }

    #[test]
    fn norms_satisfy_standard_inequalities(m in 1usize..10, n in 1usize..10, seed in any::<u64>()) {
        let a = test_matrix(m, n, seed);
        let one = fsi_dense::norm1(&a);
        let inf = fsi_dense::norm_inf(&a);
        let fro = fsi_dense::frobenius(&a);
        let max = a.max_abs();
        prop_assert!(max <= one + 1e-15);
        prop_assert!(max <= inf + 1e-15);
        prop_assert!(fro <= ((m * n) as f64).sqrt() * max + 1e-15);
        prop_assert!(one <= (m as f64) * max + 1e-12);
    }
}
