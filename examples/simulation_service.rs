//! Green's-function-as-a-service: submit multi-tenant simulation jobs to
//! the work-stealing job queue, stream measurement bins as they land,
//! watch admission control refuse infeasible work, and read the
//! per-tenant meters afterwards.
//!
//! Run with: `cargo run --release --example simulation_service`

use fsi::runtime::metrics;
use fsi::service::{AdmitError, JobEvent, JobSpec, Service, ServiceConfig};

fn main() {
    // A small service: 2 workers, each with a 2-thread pool.
    let mut cfg = ServiceConfig::small(2);
    cfg.threads_per_worker = 2;
    let service = Service::start(cfg);
    let handle = service.handle();

    // Three tenants submit jobs of different sizes concurrently. Each
    // job is `sweeps` independent Hubbard Green's functions (N = side²,
    // L slices, clusters of c), measured with the trace estimator.
    println!("submitting three tenant jobs\n");
    let jobs = [
        ("alice", JobSpec::new("alice", 2, 8, 4, 6, 11)),
        ("bob", JobSpec::new("bob", 2, 16, 4, 4, 22)),
        ("carol", JobSpec::new("carol", 3, 8, 2, 3, 33)),
    ];
    let mut handles: Vec<_> = jobs
        .iter()
        .map(|(_, spec)| handle.submit(spec.clone()).expect("admitted"))
        .collect();

    // Stream the first job's bins live (on-line analysis)...
    let streaming = handles.remove(0);
    while let Ok(event) = streaming.events().recv() {
        match event {
            JobEvent::Bin { sweep, quantities } => {
                println!("alice  sweep {sweep}: tr G = {:.6}", quantities[0])
            }
            JobEvent::Finished(s) => {
                println!(
                    "alice  done: {} bins, {:.2} ms\n",
                    s.completed_bins,
                    s.latency_ns as f64 / 1e6
                );
                break;
            }
            _ => {}
        }
    }
    // ...and `wait()` the rest: it drains each stream and assembles the
    // bins sorted by sweep.
    for (h, (tenant, _)) in handles.into_iter().zip(&jobs[1..]) {
        let outcome = h.wait();
        println!(
            "{tenant:6} done: {} bins, c stayed {}, {:.2} ms",
            outcome.bins.len(),
            outcome.summary.c_final,
            outcome.summary.latency_ns as f64 / 1e6
        );
    }

    // Admission control: on a full 24-worker Edison node, the paper's
    // pure-MPI OOM shape (N = 576, L = 100, c = 10, full columns) is
    // refused at the door — the Fig. 9 memory model says the per-worker
    // share of the node's memory cannot hold it.
    let full_node = Service::start(ServiceConfig::small(24));
    let mut big = JobSpec::new("dan", 24, 100, 10, 1, 0);
    big.pattern = fsi::selinv::Pattern::Columns;
    match full_node.handle().submit(big) {
        Err(AdmitError::MemoryBudget {
            per_worker_bytes,
            budget_bytes,
        }) => println!(
            "\ndan's N = 576 job refused: needs {:.1} GB/worker, budget {:.1} GB",
            per_worker_bytes as f64 / (1u64 << 30) as f64,
            budget_bytes as f64 / (1u64 << 30) as f64,
        ),
        other => panic!("expected a memory rejection, got {other:?}"),
    }
    full_node.shutdown();

    service.shutdown();

    // The tenant meters accumulated while the jobs ran.
    println!("\nper-tenant meters:");
    let snap = metrics::snapshot();
    for (name, value) in &snap.counters {
        if name.starts_with("service.tenant.") {
            println!("  {name} = {value}");
        }
    }
}
