//! All four selected-inversion patterns (S1–S4, paper §II-B) on one
//! Hubbard matrix, with measured time, measured flops, and the paper's
//! closed-form complexity predictions side by side.
//!
//! Run with: `cargo run --release --example selected_inversion_patterns`

use fsi::pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi::runtime::{trace, Stopwatch, TraceLevel};
use fsi::selinv::baselines::{explicit_selected, max_block_error};
use fsi::selinv::{fsi_with_q, Parallelism, Pattern, Selection};
use rand::SeedableRng;

fn main() {
    // Span-scoped flop attribution needs the collector on.
    trace::set_level(TraceLevel::Stages);
    let (nx, l, c, q) = (5usize, 24usize, 6usize, 2usize);
    let lattice = SquareLattice::square(nx);
    let n = lattice.n_sites();
    let builder = BlockBuilder::new(lattice, HubbardParams::paper_validation(l));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let field = HsField::random(l, n, &mut rng);
    let m = hubbard_pcyclic(&builder, &field, Spin::Down);
    let b = l / c;
    println!("Hubbard matrix: N = {n}, L = {l}, c = {c}, b = {b}, q = {q}\n");
    println!(
        "{:<20} {:>8} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "pattern", "#blocks", "FSI [s]", "FSI Gflop", "expl [s]", "expl Gflop", "max err"
    );

    for pattern in Pattern::ALL {
        let sel = Selection::new(pattern, c, q);

        let span = trace::span("fsi-run");
        let sw = Stopwatch::start();
        let out = fsi_with_q(Parallelism::Serial, &m, &sel).expect("healthy");
        let fsi_secs = sw.seconds();
        let fsi_gflop = span.finish().flops as f64 / 1e9;

        let span = trace::span("explicit");
        let sw = Stopwatch::start();
        let expl = explicit_selected(fsi::runtime::Par::Seq, &m, &sel);
        let expl_secs = sw.seconds();
        let expl_gflop = span.finish().flops as f64 / 1e9;

        let err = max_block_error(&out.selected, &expl);
        println!(
            "{:<20} {:>8} {:>10.4} {:>12.4} {:>12.4} {:>12.4} {:>10.2e}",
            pattern.label(),
            out.selected.len(),
            fsi_secs,
            fsi_gflop,
            expl_secs,
            expl_gflop,
            err
        );
        assert!(err < 1e-8, "{pattern:?} disagreed with the explicit form");
    }

    println!("\npaper closed-form predictions (in units of N³ flops):");
    for pattern in Pattern::ALL {
        println!(
            "  {:<20} explicit {:>12}  FSI {:>12}  predicted speedup {:>6.1}x",
            pattern.label(),
            fsi::selinv::flops::explicit_flops(pattern, 1, l, c),
            fsi::selinv::flops::fsi_flops(pattern, 1, l, c),
            fsi::selinv::flops::predicted_speedup(pattern, n, l, c),
        );
    }
}
