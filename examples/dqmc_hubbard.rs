//! A small but complete DQMC simulation of the 2D Hubbard model (paper
//! Alg. 4): warmup sweeps, measurement sweeps with FSI-computed Green's
//! functions, equal-time observables and the time-dependent SPXX
//! correlation table.
//!
//! Run with: `cargo run --release --example dqmc_hubbard`

use fsi::dqmc::{run, DqmcConfig};
use fsi::selinv::Parallelism;

fn main() {
    let cfg = DqmcConfig {
        nx: 4,
        ny: 4,
        t: 1.0,
        u: 4.0,
        beta: 2.0,
        l: 16,
        c: 4,
        warmup: 4,
        measurements: 8,
        stabilize_every: 4,
        delay: 1,
        seed: 20160523,
    };
    println!(
        "DQMC: {}x{} lattice (N = {}), L = {}, U = {}, beta = {}",
        cfg.nx,
        cfg.ny,
        cfg.nx * cfg.ny,
        cfg.l,
        cfg.u,
        cfg.beta
    );
    println!(
        "warmup = {}, measurements = {}\n",
        cfg.warmup, cfg.measurements
    );

    let results = run(&cfg, Parallelism::Serial).expect("healthy");

    println!("observable            mean        stderr");
    println!(
        "total density     {:>10.5}  {:>10.5}   (half filling -> 1)",
        results.density.mean(),
        results.density.stderr()
    );
    println!(
        "double occupancy  {:>10.5}  {:>10.5}   (U suppresses below 0.25)",
        results.double_occupancy.mean(),
        results.double_occupancy.stderr()
    );
    println!(
        "local moment      {:>10.5}  {:>10.5}   (U enhances above 0.5)",
        results.moment.mean(),
        results.moment.stderr()
    );
    println!(
        "kinetic / site    {:>10.5}  {:>10.5}",
        results.kinetic.mean(),
        results.kinetic.stderr()
    );
    println!(
        "avg sign          {:>10.5}               (1 at half filling)",
        results.avg_sign.mean()
    );
    println!("acceptance        {:>10.5}", results.acceptance.mean());

    if let Some(spxx) = &results.spxx {
        println!("\nSPXX(tau, d) — XY spin correlation (first 5 displacement classes):");
        print!("{:>4}", "tau");
        for d in 0..spxx.dmax().min(5) {
            print!("  {:>10}", format!("d={d}"));
        }
        println!("   C(tau)");
        for tau in 0..spxx.l() {
            print!("{tau:>4}");
            for d in 0..spxx.dmax().min(5) {
                print!("  {:>10.3e}", spxx.at(tau, d));
            }
            println!("   {:>5}", spxx.count(tau));
        }
    }

    println!("\nphase timing:");
    for (phase, secs, calls) in results.profile.iter() {
        println!("  {phase:<12} {secs:>8.3}s  ({calls} calls)");
    }
}
