//! Quickstart: build a Hubbard matrix, compute a selected inversion with
//! FSI, and validate it against the dense LU baseline — the §V-A
//! correctness experiment at laptop scale.
//!
//! Run with: `cargo run --release --example quickstart`

use fsi::pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi::runtime::Stopwatch;
use fsi::selinv::baselines::{full_inverse_selected, max_block_error};
use fsi::selinv::{fsi_with_q, Parallelism, Pattern, Selection};
use rand::SeedableRng;

fn main() {
    // A 6×6 periodic lattice (N = 36) with L = 32 time slices: the same
    // matrix family as the paper's validation, scaled to finish in
    // seconds. (t, β, U) = (1, 1, 2) as in §V-A.
    let (nx, l, c) = (6usize, 32usize, 8usize);
    let lattice = SquareLattice::square(nx);
    let n = lattice.n_sites();
    let params = HubbardParams::paper_validation(l);
    println!(
        "Hubbard matrix: N = {n} sites x L = {l} slices  (dim {})",
        n * l
    );
    println!(
        "params: t = {}, beta = {}, U = {}, nu = {:.4}",
        params.t,
        params.beta,
        params.u,
        params.nu()
    );

    let builder = BlockBuilder::new(lattice, params);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2016);
    let field = HsField::random(l, n, &mut rng);
    let m = hubbard_pcyclic(&builder, &field, Spin::Up);

    // FSI: b = L/c block columns of G = M⁻¹.
    let selection = Selection::new(Pattern::Columns, c, 3);
    let sw = Stopwatch::start();
    let out = fsi_with_q(Parallelism::Serial, &m, &selection).expect("healthy");
    let fsi_time = sw.seconds();
    println!(
        "\nFSI selected {} blocks ({} block columns) in {:.3}s",
        out.selected.len(),
        l / c,
        fsi_time
    );
    for (stage, secs, _) in out.profile.iter() {
        println!("  stage {stage:<6} {secs:.4}s");
    }

    // Validate against dense LU inversion of the full NL × NL matrix.
    let sw = Stopwatch::start();
    let reference = full_inverse_selected(fsi::runtime::Par::Seq, &m, &selection);
    let lu_time = sw.seconds();
    let err = max_block_error(&out.selected, &reference);
    println!(
        "\nDense LU baseline took {lu_time:.3}s (matrix dim {})",
        n * l
    );
    println!("max block relative error FSI vs LU: {err:.3e}");
    assert!(err < 1e-9, "validation failed");

    // The memory argument: selected inversion stores 1/c of the full G.
    let full_bytes = (n * l) * (n * l) * 8;
    println!(
        "\nmemory: selected = {:.2} MiB vs full inverse = {:.2} MiB  ({}x reduction)",
        out.selected.bytes() as f64 / (1 << 20) as f64,
        full_bytes as f64 / (1 << 20) as f64,
        Pattern::Columns.reduction_factor(l, c)
    );
    println!("\nvalidation PASSED (rel err < 1e-9, same threshold family as the paper's 1e-10)");
}
