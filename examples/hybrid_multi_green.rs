//! The hybrid ranks×threads application of FSI to many Green's functions
//! (paper Alg. 3 / Fig. 9): scatter HS fields from the root rank, run FSI
//! per matrix under each rank's thread pool, reduce measurement
//! quantities — plus the Edison memory model that decides which
//! configurations are feasible at paper scale.
//!
//! Run with: `cargo run --release --example hybrid_multi_green`

use fsi::pcyclic::{BlockBuilder, HubbardParams, SquareLattice};
use fsi::selinv::multi::{per_rank_bytes, trace_measure, MultiConfig};
use fsi::selinv::{run_multi, MemoryModel, Pattern};

fn main() {
    // Local run: 12 matrices over a few rank×thread configurations.
    let lattice = SquareLattice::square(4);
    let builder = BlockBuilder::new(lattice, HubbardParams::paper_validation(16));
    println!("local hybrid sweep: 12 Hubbard matrices, N = 16, L = 16, c = 4\n");
    println!(
        "{:>6} {:>9} {:>12} {:>14} {:>12}",
        "ranks", "threads", "seconds", "sum tr G(k,k)", "blocks"
    );
    let mut reference: Option<f64> = None;
    for (ranks, threads) in [(1usize, 2usize), (2, 1), (4, 1), (2, 2)] {
        let cfg = MultiConfig {
            ranks,
            threads_per_rank: threads,
            matrices: 12,
            c: 4,
            pattern: Pattern::Columns,
            seed: 99,
            scheduling: fsi::selinv::Scheduling::WorkStealing,
        };
        let r = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
        println!(
            "{:>6} {:>9} {:>12.3} {:>14.6} {:>12}",
            ranks, threads, r.seconds, r.global_measurements[0], r.global_measurements[1]
        );
        // Physics must be identical across configurations (same seed).
        match reference {
            None => reference = Some(r.global_measurements[0]),
            Some(want) => assert!(
                (r.global_measurements[0] - want).abs() < 1e-6 * want.abs().max(1.0),
                "configuration changed the physics!"
            ),
        }
    }

    // The paper-scale memory feasibility analysis behind Fig. 9.
    println!("\nEdison memory model, (L, c) = (100, 10), columns pattern:");
    let model = MemoryModel::edison();
    println!(
        "{:>6} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "N", "GB/rank", "24x1", "12x2", "4x6", "1x24"
    );
    for n in [400usize, 576, 784, 1024] {
        let bytes = per_rank_bytes(n, 100, 10, Pattern::Columns);
        let gb = bytes as f64 / (1u64 << 30) as f64;
        let feas = |ranks: usize| {
            if model.feasible(ranks, bytes) {
                "ok"
            } else {
                "OOM"
            }
        };
        println!(
            "{:>6} {:>14.2} {:>10} {:>10} {:>10} {:>10}",
            n,
            gb,
            feas(24),
            feas(12),
            feas(4),
            feas(1)
        );
    }
    println!("\n(as in the paper: pure MPI is fastest where it fits — N = 400 —");
    println!(" but OOMs from N = 576 on, where the hybrid model wins)");
}
