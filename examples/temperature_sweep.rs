//! Physics application: antiferromagnetic correlations growing as the
//! temperature drops — the class of measurement campaign the paper's
//! pipeline (and its Tflop budget on Edison) exists to run.
//!
//! Sweeps the inverse temperature β at fixed `U`, running a full DQMC
//! simulation per point, and prints the local moment, the staggered
//! structure factor `S(π,π)`, and the uniform XY susceptibility. At half
//! filling the Hubbard model develops AF order as `T → 0`, so all three
//! should grow monotonically (within Monte Carlo noise at this tiny
//! scale).
//!
//! Run with: `cargo run --release --example temperature_sweep`

use fsi::dqmc::{run, DqmcConfig};
use fsi::selinv::Parallelism;

fn main() {
    println!("Hubbard 4x4, U = 4, half filling: cooling sweep\n");
    println!(
        "{:>6} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "beta", "L", "moment", "S(pi,pi)", "chi_xy", "docc", "accept"
    );
    let mut previous_sf: Option<f64> = None;
    for (beta, l) in [(1.0, 8usize), (2.0, 16), (3.0, 24), (4.0, 32)] {
        let cfg = DqmcConfig {
            nx: 4,
            ny: 4,
            t: 1.0,
            u: 4.0,
            beta,
            l,
            c: 4,
            warmup: 3,
            measurements: 6,
            stabilize_every: 4,
            delay: 8,
            seed: 4242,
        };
        let r = run(&cfg, Parallelism::Serial).expect("healthy");
        println!(
            "{:>6.1} {:>6} {:>10.4} {:>12.4} {:>12.4} {:>12.4} {:>10.3}",
            beta,
            l,
            r.moment.mean(),
            r.structure_factor.mean(),
            r.susceptibility.mean(),
            r.double_occupancy.mean(),
            r.acceptance.mean()
        );
        if let Some(prev) = previous_sf {
            if r.structure_factor.mean() < prev * 0.7 {
                println!("        (note: S(pi,pi) dipped — expected occasionally at this tiny sample size)");
            }
        }
        previous_sf = Some(r.structure_factor.mean());
    }
    println!("\nexpected physics: moment, S(pi,pi) and chi_xy all grow on cooling —");
    println!("antiferromagnetic correlations building up in the half-filled Hubbard model.");
}
