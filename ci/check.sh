#!/usr/bin/env bash
# Offline-friendly CI gate: formatting, lints, build, tests.
#
# Usage: ci/check.sh [--quick]
#   --quick   skip the test suite (format + lint + build only)
#
# Everything runs with --offline so the gate works in sandboxes without
# registry access (all third-party deps are vendored in vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --offline --workspace --release

# The doc gate spans every workspace member, including fsi-service,
# which additionally compiles under #![deny(missing_docs)]: an
# undocumented public item in the service API fails this step.
echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps

if [[ $quick -eq 0 ]]; then
  echo "== cargo test =="
  cargo test --offline --workspace -q

  echo "== cargo test --doc =="
  cargo test --offline --workspace --doc -q

  echo "== cargo test --features fault-inject =="
  cargo test --offline --workspace -q --features fault-inject

  # Metrics-enabled lane: the always-on registry and flight recorder are
  # exercised with stage tracing live and a real dump directory, so the
  # span→flight wiring and incident-dump file path run inside the test
  # suite instead of only in production incidents.
  echo "== cargo test (metrics lane: FSI_TRACE=stages + flight dir) =="
  FLIGHT_DIR="$(mktemp -d)"
  FSI_TRACE=stages FSI_FLIGHT_DIR="$FLIGHT_DIR" \
    cargo test --offline -q -p fsi-runtime -p fsi-dqmc
  rm -rf "$FLIGHT_DIR"

  # Kernel-equivalence lane with the dispatch forced to the scalar tier
  # (FSI_KERNEL is read once per process, so the forced choice covers the
  # whole run): the batched/blocked/chain paths and all tier-parity
  # proptests must hold when every consumer rides the portable kernel —
  # this is the lane that would catch a vector-tier result leaking into a
  # scalar-pinned run, and it keeps the suite meaningful on hosts without
  # AVX.
  echo "== cargo test (kernel lane: FSI_KERNEL=scalar) =="
  FSI_KERNEL=scalar cargo test --offline -q -p fsi-dense

  # Kill-point lane: the durability property tests under simulated
  # crashes — journal-append kill, drain/recover, torn-envelope
  # rejection — must hold in isolation (the killpoint plan is global
  # state, serialized by its test lock; single-test-binary scope keeps
  # the lane's failure output attributable).
  echo "== cargo test (kill-point lane: prop_recovery + fault-inject) =="
  cargo test --offline -q --test prop_recovery --features fault-inject

  # The checked profile keeps release optimization but turns debug
  # assertions and overflow checks back on — numeric guardrail bugs that
  # only trip under assertions surface here.
  echo "== cargo test --profile checked (fault-inject) =="
  cargo test --offline --workspace -q --profile checked --features fault-inject

  # Non-gating: record kernel throughput (results/BENCH_kernels.json is
  # informational; timing noise must never fail the gate).
  echo "== bench smoke (non-gating) =="
  ci/bench_smoke.sh --out=/tmp/BENCH_kernels_ci.json || \
    echo "bench smoke failed (non-gating), continuing"
fi

echo "== all checks passed =="
