#!/usr/bin/env bash
# Non-gating kernel-performance smoke: times the packed GEMM engine (all
# four Op paths) plus the cls/bsofi/wrap FSI stages at tiny sizes and
# writes results/BENCH_kernels.json (size, Gflop/s, trace-measured flops).
#
# The binary asserts the span-measured flops of each timed gemm equal the
# analytic counts::gemm model exactly, so a silent attribution regression
# still fails this script — but a *slow* machine does not: throughput
# numbers are recorded, never compared against a threshold here.
#
# Usage: ci/bench_smoke.sh [--label=NAME] [--out=PATH] [sizes=64,128,256]
#   (extra args pass straight through to the bench_smoke binary)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release -p fsi-bench =="
cargo build --offline --release -p fsi-bench --bin bench_smoke

echo "== bench_smoke =="
./target/release/bench_smoke "$@"
