#!/usr/bin/env bash
# Non-gating performance smoke: times the packed GEMM engine (all four Op
# paths) plus the cls/bsofi/wrap FSI stages and writes
# results/BENCH_kernels.json, then times the DQMC sweep hot path (wrap
# strategies, incremental refresh, spin-joined sweep) and writes
# results/BENCH_sweep.json, then times the BSOFI stage (dense vs selected
# assembly, serial vs look-ahead factor) and writes
# results/BENCH_bsofi.json.
#
# The binaries assert structural invariants (span-measured flops match the
# analytic models; the checkerboard wrap beats the dense wrap >= 2x; warm
# refreshes score cluster-cache hits), so silent attribution or caching
# regressions still fail this script — but a *slow* machine does not:
# throughput numbers are recorded, never compared against a threshold.
#
# After the benches run, the perf-regression sentinel (bench_report)
# compares the fresh artifacts against results/baselines/ and appends a
# row to results/BENCH_history.jsonl. By default the sentinel only
# *warns* (timing noise must never fail the smoke lane by accident);
# pass --gate to make a sentinel regression fail this script. Missing
# baselines are seeded from the fresh run.
#
# Usage: ci/bench_smoke.sh [--label=NAME] [--out=PATH] [--sweep-out=PATH]
#   [--gate] [sizes=64,128,256] ...
# Args other than --sweep-out/--gate pass through to bench_smoke;
# bench_sweep gets the --label plus --sweep-out as its --out (default:
# --out with a .sweep suffix, or results/BENCH_sweep.json).
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE_ARGS=()
SWEEP_OUT=""
KERNELS_OUT=""
LABEL_ARG=""
GATE=0
for arg in "$@"; do
  case "$arg" in
    --sweep-out=*) SWEEP_OUT="${arg#--sweep-out=}" ;;
    --gate) GATE=1 ;;
    --label=*)
      LABEL_ARG="$arg"
      SMOKE_ARGS+=("$arg")
      ;;
    --out=*)
      KERNELS_OUT="${arg#--out=}"
      if [ -z "$SWEEP_OUT" ]; then
        SWEEP_OUT="${KERNELS_OUT%.json}.sweep.json"
      fi
      SMOKE_ARGS+=("$arg")
      ;;
    *) SMOKE_ARGS+=("$arg") ;;
  esac
done
[ -n "$SWEEP_OUT" ] || SWEEP_OUT="results/BENCH_sweep.json"

echo "== cargo build --release -p fsi-bench =="
cargo build --offline --release -p fsi-bench \
  --bin bench_smoke --bin bench_sweep --bin bench_bsofi

echo "== bench_smoke =="
./target/release/bench_smoke ${SMOKE_ARGS[@]+"${SMOKE_ARGS[@]}"}

echo "== bench_sweep =="
./target/release/bench_sweep ${LABEL_ARG:+"$LABEL_ARG"} "--out=$SWEEP_OUT"

# The fault drill's smoke lane arms one injection site per probe family
# against the DQMC workload and asserts detection + recovery + trajectory
# preservation — these are structural properties, so the drill gates (only
# its probe-overhead number is informational).
echo "== fault_drill --smoke =="
cargo build --offline --release -p fsi-bench --bin fault_drill \
  --features fault-inject
./target/release/fault_drill --smoke ${LABEL_ARG:+"$LABEL_ARG"} \
  --out=results/BENCH_fault_drill.json

# The service smoke drives 1200 concurrent jobs through the work-stealing
# job queue (throughput + latency percentiles), saturates a tiny queue to
# prove admission rejects-with-reason, and (fault-inject build) checks
# one injected NaN degrades exactly one job while neighbors stay bitwise
# clean. Its structural asserts gate; its timing numbers are judged
# warn-only by the sentinel below.
echo "== bench_service --smoke =="
cargo build --offline --release -p fsi-bench --bin bench_service \
  --features fault-inject
SERVICE_OUT="results/BENCH_service.json"
./target/release/bench_service --smoke ${LABEL_ARG:+"$LABEL_ARG"} \
  "--out=$SERVICE_OUT"

# The recovery drill kills the durable sweep engine and the service at
# every durability boundary (post-journal-append, mid-checkpoint torn
# write, between checkpoints, stalled worker) and asserts 100%
# detect-and-resume with bitwise-identical fields, signs, Green's
# functions, and bins. Pure structural properties, so it GATES.
echo "== bench_recovery --smoke =="
cargo build --offline --release -p fsi-bench --bin bench_recovery \
  --features fault-inject
RECOVERY_OUT="results/BENCH_recovery.json"
./target/release/bench_recovery --smoke ${LABEL_ARG:+"$LABEL_ARG"} \
  "--out=$RECOVERY_OUT"

# bench_bsofi asserts a >=1.5x selected-vs-dense wall-time win, which is a
# *timing* property — informative, but a slow/noisy machine must not fail
# the smoke gate, so it is tolerated here (its flop-attribution and bitwise
# asserts still run and print).
echo "== bench_bsofi (non-gating) =="
./target/release/bench_bsofi ${LABEL_ARG:+"$LABEL_ARG"} || \
  echo "bench_bsofi failed (non-gating), continuing"

# Perf-regression sentinel: compare the fresh artifacts against the
# checked-in baselines, append the trajectory row, seed any missing
# baseline. --smoke skips families whose artifact was not produced in
# this lane (e.g. validate.json).
echo "== bench_report (perf-regression sentinel) =="
cargo build --offline --release -p fsi-bench --bin bench_report
REPORT_ARGS=(--smoke --seed "--fresh=sweep:$SWEEP_OUT" "--fresh=service:$SERVICE_OUT"
  "--fresh=recovery:$RECOVERY_OUT")
[ -n "$KERNELS_OUT" ] && REPORT_ARGS+=("--fresh=kernels:$KERNELS_OUT")
[ -n "$LABEL_ARG" ] && REPORT_ARGS+=("$LABEL_ARG")
[ "$GATE" -eq 1 ] || REPORT_ARGS+=(--warn-only)
./target/release/bench_report "${REPORT_ARGS[@]}"
