//! Integration test: the paper's §V-A correctness validation, across all
//! selection patterns, both spins, and several (c, q) choices — FSI vs
//! the dense LU reference on genuine Hubbard matrices.

use fsi::pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi::runtime::Par;
use fsi::selinv::baselines::{full_inverse_selected, max_block_error, mean_block_error};
use fsi::selinv::{fsi_with_q, Parallelism, Pattern, Selection};
use rand::SeedableRng;

fn validation_matrix(l: usize, spin: Spin, seed: u64) -> fsi::pcyclic::BlockPCyclic {
    // (t, β, U) = (1, 1, 2) as in the paper's validation.
    let lattice = SquareLattice::square(3);
    let builder = BlockBuilder::new(lattice, HubbardParams::paper_validation(l));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let field = HsField::random(l, 9, &mut rng);
    hubbard_pcyclic(&builder, &field, spin)
}

#[test]
fn paper_validation_shape_mean_error_below_1e10() {
    // The exact §V-A criterion (mean relative block error < 1e-10) on a
    // scaled-down matrix of the same family.
    let pc = validation_matrix(16, Spin::Up, 1);
    let sel = Selection::new(Pattern::Columns, 4, 2);
    let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
    let reference = full_inverse_selected(Par::Seq, &pc, &sel);
    let mean = mean_block_error(&out.selected, &reference);
    assert!(mean < 1e-10, "mean relative error {mean} >= 1e-10");
}

#[test]
fn all_patterns_validate_for_both_spins() {
    for spin in Spin::BOTH {
        let pc = validation_matrix(12, spin, 2);
        for pattern in Pattern::ALL {
            let sel = Selection::new(pattern, 4, 1);
            let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
            let reference = full_inverse_selected(Par::Seq, &pc, &sel);
            let err = max_block_error(&out.selected, &reference);
            assert!(err < 1e-10, "{spin:?} {pattern:?}: {err}");
        }
    }
}

#[test]
fn every_shift_q_validates() {
    let pc = validation_matrix(12, Spin::Down, 3);
    for q in 0..4 {
        let sel = Selection::new(Pattern::Columns, 4, q);
        let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        let reference = full_inverse_selected(Par::Seq, &pc, &sel);
        let err = max_block_error(&out.selected, &reference);
        assert!(err < 1e-10, "q={q}: {err}");
    }
}

#[test]
fn extreme_cluster_sizes_validate() {
    let pc = validation_matrix(12, Spin::Up, 4);
    // c = 1 (no reduction) and c = L (single cluster) are the boundary
    // cases of the algorithm.
    for c in [1usize, 2, 3, 6, 12] {
        let sel = Selection::new(Pattern::Columns, c, c - 1);
        let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        let reference = full_inverse_selected(Par::Seq, &pc, &sel);
        let err = max_block_error(&out.selected, &reference);
        assert!(err < 1e-9, "c={c}: {err}");
    }
}

#[test]
fn condition_number_of_validation_family_is_moderate() {
    // The paper quotes κ(M) ≈ 1e5 for its 6400-dim validation matrix;
    // our scaled matrix should be comfortably conditioned, which is what
    // makes the 1e-10 threshold meaningful.
    let pc = validation_matrix(8, Spin::Up, 5);
    let kappa = fsi::dense::cond1(&pc.assemble_dense()).expect("nonsingular");
    assert!(kappa > 1.0 && kappa < 1e7, "κ = {kappa}");
}
