//! Property-based integration tests: FSI agrees with the dense reference
//! for arbitrary valid configurations, and the structural identities the
//! algorithm rests on hold for random p-cyclic matrices.

use fsi::pcyclic::random_pcyclic;
use fsi::runtime::Par;
use fsi::selinv::baselines::{full_inverse_selected, max_block_error};
use fsi::selinv::{bsofi, cls, fsi_with_q, Parallelism, Pattern, Selection};
use proptest::prelude::*;

/// Valid (n, l, c, q, pattern, seed) configurations: c divides l, q < c.
fn fsi_config() -> impl Strategy<Value = (usize, usize, usize, usize, Pattern, u64)> {
    (2usize..5, 1usize..5, any::<u64>(), 0usize..4)
        .prop_flat_map(|(n, b, seed, pat_idx)| {
            // l = b * c with c in 1..=4.
            (Just(n), 1usize..5, Just(b), Just(seed), Just(pat_idx))
        })
        .prop_flat_map(|(n, c, b, seed, pat_idx)| {
            let l = b * c;
            (Just(n), Just(l), Just(c), 0..c, Just(pat_idx), Just(seed))
        })
        .prop_map(|(n, l, c, q, pat_idx, seed)| (n, l, c, q, Pattern::ALL[pat_idx], seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: FSI equals the dense LU baseline on every
    /// selected block, for arbitrary valid configurations.
    #[test]
    fn fsi_matches_dense_reference((n, l, c, q, pattern, seed) in fsi_config()) {
        let pc = random_pcyclic(n, l, seed);
        let sel = Selection::new(pattern, c, q);
        let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        let reference = full_inverse_selected(Par::Seq, &pc, &sel);
        let err = max_block_error(&out.selected, &reference);
        prop_assert!(err < 1e-8, "(n={n}, l={l}, c={c}, q={q}, {pattern:?}): {err}");
        // Exactly the right set of blocks was produced.
        prop_assert_eq!(out.selected.len(), sel.coordinates(l).len());
    }

    /// BSOFI inverts arbitrary random p-cyclic matrices.
    #[test]
    fn bsofi_inverts_random_pcyclic(n in 2usize..5, b in 1usize..7, seed in any::<u64>()) {
        let pc = random_pcyclic(n, b, seed);
        let g = bsofi(Par::Seq, Par::Seq, &pc);
        let m = pc.assemble_dense();
        let mut prod = fsi::dense::mul(&m, &g);
        prod.add_diag(-1.0);
        prop_assert!(prod.max_abs() < 1e-8, "|MG - I| = {}", prod.max_abs());
    }

    /// The seed identity Ḡ(k₀,ℓ₀) = G(ck₀+o, cℓ₀+o) holds for every
    /// clustering of every random matrix.
    #[test]
    fn clustering_preserves_seed_blocks(
        n in 2usize..4,
        b in 1usize..4,
        c in 1usize..4,
        seed in any::<u64>(),
    ) {
        let l = b * c;
        let q = seed as usize % c;
        let pc = random_pcyclic(n, l, seed);
        let clustered = cls(Par::Seq, Par::Seq, &pc, c, q);
        let g_red = clustered.reduced.reference_green(Par::Seq);
        let g_full = pc.reference_green(Par::Seq);
        for k0 in 0..b {
            for l0 in 0..b {
                let got = clustered.reduced.dense_block(&g_red, k0, l0);
                let want = pc.dense_block(
                    &g_full,
                    clustered.to_original(k0),
                    clustered.to_original(l0),
                );
                prop_assert!(
                    fsi::dense::rel_error(&got, &want) < 1e-7,
                    "seed ({k0},{l0})"
                );
            }
        }
    }

    /// All four adjacency relations hold at every block position of
    /// random matrices (exercises every torus boundary case).
    #[test]
    fn adjacency_relations_hold(n in 2usize..4, l in 2usize..7, seed in any::<u64>()) {
        let pc = random_pcyclic(n, l, seed);
        let g = pc.reference_green(Par::Seq);
        let worst = fsi::selinv::wrap::max_relation_error(&pc, &g);
        prop_assert!(worst < 1e-7, "worst relation error {worst}");
    }

    /// Selected inversions store exactly the predicted number of bytes.
    #[test]
    fn selection_memory_matches_formula(
        n in 2usize..5,
        b in 1usize..4,
        c in 1usize..4,
        pat_idx in 0usize..4,
    ) {
        let l = b * c;
        let pattern = Pattern::ALL[pat_idx];
        let pc = random_pcyclic(n, l, 7);
        let sel = Selection::new(pattern, c, 0);
        let out = fsi_with_q(Parallelism::Serial, &pc, &sel).expect("healthy");
        prop_assert_eq!(out.selected.bytes(), pattern.n_blocks(l, c) * n * n * 8);
    }
}
