//! Cross-crate integration: the full stack from lattice to DQMC results,
//! the hybrid multi-matrix driver, and the interplay of parallel modes.

use fsi::dqmc::{run, DqmcConfig};
use fsi::pcyclic::{BlockBuilder, HubbardParams, SquareLattice};
use fsi::runtime::ThreadPool;
use fsi::selinv::multi::{trace_measure, MultiConfig};
use fsi::selinv::{run_multi, MemoryModel, Parallelism, Pattern};

#[test]
fn dqmc_runs_identically_under_all_parallel_modes() {
    let cfg = DqmcConfig {
        nx: 2,
        ny: 2,
        t: 1.0,
        u: 4.0,
        beta: 2.0,
        l: 8,
        c: 4,
        warmup: 1,
        measurements: 3,
        stabilize_every: 4,
        delay: 1,
        seed: 77,
    };
    let serial = run(&cfg, Parallelism::Serial).expect("healthy");
    let pool = ThreadPool::new(3);
    let omp = run(&cfg, Parallelism::OpenMp(&pool)).expect("healthy");
    let mkl = run(&cfg, Parallelism::MklStyle(&pool)).expect("healthy");
    for other in [&omp, &mkl] {
        assert!((serial.density.mean() - other.density.mean()).abs() < 1e-9);
        assert!((serial.moment.mean() - other.moment.mean()).abs() < 1e-9);
        assert!((serial.kinetic.mean() - other.kinetic.mean()).abs() < 1e-9);
    }
    // SPXX tables agree too.
    let a = serial.spxx.as_ref().expect("spxx");
    let b = omp.spxx.as_ref().expect("spxx");
    for tau in 0..cfg.l {
        for d in 0..a.dmax() {
            assert!((a.at(tau, d) - b.at(tau, d)).abs() < 1e-9);
        }
    }
}

#[test]
fn multi_matrix_reduction_is_invariant_to_topology() {
    let builder = BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8));
    let base = MultiConfig {
        ranks: 1,
        threads_per_rank: 1,
        matrices: 6,
        c: 4,
        pattern: Pattern::Rows,
        seed: 31,
        scheduling: fsi::selinv::Scheduling::Static,
    };
    let reference = run_multi(&builder, &base, &trace_measure).expect("healthy");
    for (ranks, threads) in [(2usize, 1usize), (3, 2), (6, 1), (1, 4)] {
        let cfg = MultiConfig {
            ranks,
            threads_per_rank: threads,
            ..base.clone()
        };
        let r = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
        for (a, b) in reference
            .global_measurements
            .iter()
            .zip(&r.global_measurements)
        {
            assert!(
                (a - b).abs() < 1e-6 * a.abs().max(1.0),
                "{ranks}x{threads}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn memory_model_feasibility_is_monotone() {
    let model = MemoryModel::edison();
    // More ranks per node can never turn an infeasible config feasible.
    for n in [400usize, 576, 784, 1024] {
        let bytes = fsi::selinv::multi::per_rank_bytes(n, 100, 10, Pattern::Columns);
        let mut prev = true;
        for ranks in [1usize, 2, 4, 8, 12, 24] {
            let f = model.feasible(ranks, bytes);
            assert!(
                prev || !f,
                "feasibility not monotone at N={n}, ranks={ranks}"
            );
            prev = f;
        }
    }
    // Per-rank bytes grow with N and with the selection size.
    let diag = fsi::selinv::multi::per_rank_bytes(400, 100, 10, Pattern::Diagonal);
    let cols = fsi::selinv::multi::per_rank_bytes(400, 100, 10, Pattern::Columns);
    assert!(cols > diag);
}

#[test]
fn flop_accounting_spans_the_whole_pipeline() {
    // A full FSI run must register flops from all three stages.
    use fsi::pcyclic::{hubbard_pcyclic, HsField, Spin};
    use fsi::selinv::{fsi_with_q, Selection};
    use rand::SeedableRng;
    let builder = BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8));
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    let field = HsField::random(8, 4, &mut rng);
    let pc = hubbard_pcyclic(&builder, &field, Spin::Up);
    let _lock = fsi::runtime::trace::test_lock();
    fsi::runtime::trace::set_level(fsi::runtime::TraceLevel::Stages);
    let span = fsi::runtime::trace::span("pipeline");
    let _ = fsi_with_q(
        Parallelism::Serial,
        &pc,
        &Selection::new(Pattern::Columns, 4, 1),
    )
    .expect("healthy");
    let counted = span.finish().flops;
    fsi::runtime::trace::set_level(fsi::runtime::TraceLevel::Off);
    fsi::runtime::trace::clear();
    // Rough analytic budget: should be within an order of magnitude of
    // the closed form.
    let predicted = fsi::selinv::flops::fsi_flops_exact(Pattern::Columns, 4, 8, 4);
    assert!(
        counted > predicted / 4,
        "counted {counted} vs predicted {predicted}"
    );
    assert!(
        counted < predicted * 10,
        "counted {counted} vs predicted {predicted}"
    );
}

#[test]
fn umbrella_reexports_are_wired() {
    // Compile-time check that the umbrella crate exposes all five layers.
    let _ = fsi::runtime::hardware_threads();
    let m = fsi::dense::Matrix::identity(2);
    assert_eq!(m.rows(), 2);
    let lat = fsi::pcyclic::SquareLattice::square(2);
    assert_eq!(lat.n_sites(), 4);
    assert_eq!(fsi::selinv::Pattern::ALL.len(), 4);
    let cfg = fsi::dqmc::DqmcConfig::small();
    assert!(cfg.l.is_multiple_of(cfg.c));
}
