//! Durability properties: checkpoint envelopes round-trip bitwise,
//! every single-byte corruption of a sealed envelope is rejected, a
//! torn current generation falls back to the previous one, and a
//! drained (or, under `fault-inject`, crash-killed) service resumes
//! with bins bitwise-identical to an uninterrupted run.

use fsi::dqmc::sweep::WrapStrategy;
use fsi::dqmc::{DurableSweeper, SweepCheckpoint, SweepConfig};
use fsi::pcyclic::{BlockBuilder, HubbardParams, SquareLattice};
use fsi::runtime::ckpt::{self, Generation};
use fsi::selinv::Parallelism;
use fsi::service::{JobSpec, Service, ServiceConfig};
use proptest::prelude::*;

/// A process-unique scratch path under the OS temp dir.
fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "fsi-prop-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A structurally valid checkpoint from proptest-driven raw parts
/// (`c` divides `L`, field entries are ±1).
fn arb_checkpoint() -> impl Strategy<Value = SweepCheckpoint> {
    (1usize..5, 1usize..5, 1usize..4).prop_flat_map(|(l_units, n, c)| {
        let l = c * l_units;
        (
            any::<u64>(),
            any::<u64>(),
            any::<bool>(),
            prop::collection::vec((0u32..2).prop_map(|b| if b == 0 { -1i8 } else { 1i8 }), {
                let spins = l * n;
                spins..spins + 1
            }),
            prop::collection::vec((0u64..64, prop::collection::vec(-1e3f64..1e3, 0..4)), 0..4),
            -1e6f64..1e6,
        )
            .prop_map(move |(sweep, rng_word_pos, factored, field, bins, sign)| {
                SweepCheckpoint {
                    sweep,
                    l,
                    n,
                    field,
                    rng_word_pos,
                    sign,
                    cfg: SweepConfig {
                        c,
                        stabilize_every: c,
                        delay: 1,
                        wrap: if factored {
                            WrapStrategy::Factored
                        } else {
                            WrapStrategy::Dense
                        },
                        incremental: factored,
                        track_drift: false,
                    },
                    bins,
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `encode ∘ decode` is the identity on valid checkpoints — the
    /// field, RNG position, sign bits, config, and every bin survive.
    #[test]
    fn checkpoint_round_trips_bitwise(ckpt in arb_checkpoint()) {
        let decoded = SweepCheckpoint::decode(&ckpt.encode()).expect("valid checkpoint decodes");
        prop_assert_eq!(&decoded, &ckpt);
        prop_assert_eq!(decoded.sign.to_bits(), ckpt.sign.to_bits());
    }

    /// Flipping any single byte of a sealed envelope — header or
    /// payload — is always detected: FNV-1a's byte step is invertible,
    /// so no single-byte corruption can collide, and the header fields
    /// are each independently checked.
    #[test]
    fn any_single_corrupted_byte_is_rejected(
        payload in prop::collection::vec((0u32..256).prop_map(|b| b as u8), 0..64),
        corrupt_at in any::<usize>(),
        flip in 1u32..256,
    ) {
        let sealed = ckpt::seal(7, &payload);
        let mut torn = sealed.clone();
        let at = corrupt_at % torn.len();
        let flip = flip as u8;
        torn[at] ^= flip;
        prop_assert!(
            ckpt::open(&torn, 7).is_err(),
            "byte {at} xor {flip:#04x} slipped past the envelope checks"
        );
        // And the uncorrupted envelope still opens, to rule out a
        // vacuous pass.
        prop_assert_eq!(ckpt::open(&sealed, 7).expect("clean envelope"), &payload[..]);
    }

    /// Two-generation rotation: after a second `store`, tearing the
    /// current file at any truncation point still recovers the previous
    /// generation's payload.
    #[test]
    fn torn_current_generation_falls_back(cut in 0usize..20) {
        let path = scratch("rotate");
        ckpt::store(&path, 3, b"generation-zero").expect("store gen 0");
        ckpt::store(&path, 3, b"generation-one").expect("store gen 1");
        let sealed = std::fs::read(&path).expect("read current");
        std::fs::write(&path, &sealed[..cut.min(sealed.len() - 1)]).expect("tear current");
        let (payload, generation) = ckpt::load(&path, 3).expect("previous generation survives");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(ckpt::prev_path(&path));
        prop_assert_eq!(generation, Generation::Previous);
        prop_assert_eq!(&payload[..], b"generation-zero");
    }
}

/// A checkpoint written mid-trajectory resumes bitwise: same bins, same
/// field, same sign bits, same Green's functions as never stopping.
#[test]
fn dqmc_resume_is_bitwise_equal_to_uninterrupted() {
    let builder = BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(8));
    let cfg = SweepConfig {
        c: 4,
        stabilize_every: 4,
        ..SweepConfig::default()
    };
    let seed = 97;
    let total = 5;
    let mut reference = DurableSweeper::new(&builder, cfg, seed).expect("reference");
    reference
        .run_to(total, Parallelism::Serial, None, 1)
        .expect("reference run");

    let path = scratch("dqmc");
    let mut first = DurableSweeper::new(&builder, cfg, seed).expect("first leg");
    first
        .run_to(3, Parallelism::Serial, Some(&path), 1)
        .expect("first leg run");
    drop(first);
    let (saved, generation) = SweepCheckpoint::load(&path).expect("checkpoint on disk");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(ckpt::prev_path(&path));
    assert_eq!(generation, Generation::Current);
    let mut resumed = DurableSweeper::resume(&builder, saved, seed).expect("resume");
    resumed
        .run_to(total, Parallelism::Serial, None, 1)
        .expect("second leg");

    assert_eq!(resumed.bins(), reference.bins());
    assert_eq!(resumed.sweeper().field(), reference.sweeper().field());
    assert_eq!(
        resumed.sweeper().sign().to_bits(),
        reference.sweeper().sign().to_bits()
    );
    for spin in fsi::pcyclic::Spin::BOTH {
        assert_eq!(
            resumed.sweeper().green(spin).as_slice(),
            reference.sweeper().green(spin).as_slice()
        );
    }
}

/// Service-tier resume: `drain()` checkpoints in-flight jobs, and a
/// `recover()` on the same state directory completes them with bins
/// bitwise-identical to an uninterrupted run. No fault injection
/// needed — drain/recover is the graceful-restart path.
#[test]
fn drained_service_recovers_bitwise() {
    let dir = scratch("drain");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = JobSpec::new("drainee", 2, 8, 4, 16, 314);

    // Uninterrupted reference on an identical (durability-free) service.
    let clean = Service::start({
        let mut c = ServiceConfig::small(1);
        c.state_dir = None;
        c
    });
    let reference = clean
        .handle()
        .submit(spec.clone())
        .expect("admitted")
        .wait();
    clean.shutdown();
    assert!(!reference.summary.failed);

    let cfg = || {
        let mut c = ServiceConfig::small(1);
        c.state_dir = Some(dir.clone());
        c.checkpoint_every = 1;
        c
    };
    // Interrupted arm: drain as soon as the first bin lands, so later
    // sweeps are discarded unclaimed and must rerun after recovery. If
    // the worker outruns us and retires the whole job before the drain
    // takes effect (a legal race — the journal's finished record then
    // correctly leaves nothing to re-admit), start over; with 16
    // sweeps that window is vanishingly small.
    let mut attempt = 0;
    let (recovered, handles) = loop {
        attempt += 1;
        let _ = std::fs::remove_dir_all(&dir);
        let service = Service::start(cfg());
        let handle = service.handle().submit(spec.clone()).expect("admitted");
        loop {
            match handle.events().recv() {
                Ok(fsi::service::JobEvent::Bin { .. }) => break,
                Ok(_) => {}
                Err(_) => panic!("service closed before the first bin"),
            }
        }
        service.drain();

        let (recovered, handles) = Service::recover(cfg()).expect("recover");
        if !handles.is_empty() {
            break (recovered, handles);
        }
        recovered.shutdown();
        assert!(
            attempt < 8,
            "job kept finishing before drain interrupted it"
        );
    };
    assert_eq!(handles.len(), 1, "the drained job must survive the restart");
    let outcome = handles.into_iter().next().unwrap().wait();
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(!outcome.summary.failed);
    assert_eq!(outcome.bins.len(), reference.bins.len());
    for ((sweep_a, bin_a), (sweep_b, bin_b)) in outcome.bins.iter().zip(&reference.bins) {
        assert_eq!(sweep_a, sweep_b);
        assert_eq!(bin_a, bin_b, "sweep {sweep_a}: resume must be bitwise");
    }
}

/// Hard-crash resume: a kill right after the journal append leaves only
/// the write-ahead record; recovery reruns the job from scratch and
/// still matches bitwise.
#[cfg(feature = "fault-inject")]
#[test]
fn killed_service_recovers_bitwise() {
    use fsi::service::killpoint::{self, KillSite};

    let _guard = killpoint::test_lock();
    let dir = scratch("kill");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = JobSpec::new("victim", 2, 8, 4, 3, 2718);

    let clean = Service::start({
        let mut c = ServiceConfig::small(2);
        c.state_dir = None;
        c
    });
    let reference = clean
        .handle()
        .submit(spec.clone())
        .expect("admitted")
        .wait();
    clean.shutdown();

    let cfg = || {
        let mut c = ServiceConfig::small(2);
        c.state_dir = Some(dir.clone());
        c
    };
    killpoint::arm(KillSite::AfterJournalAppend);
    let service = Service::start(cfg());
    let handle = service.handle().submit(spec).expect("admitted");
    let _ = handle.wait(); // in-memory completion; durable state froze
    assert_eq!(killpoint::disarm(), 1, "the kill point must fire");
    service.kill();

    let (recovered, handles) = Service::recover(cfg()).expect("recover");
    assert_eq!(handles.len(), 1, "journal replay must re-admit the job");
    let outcome = handles.into_iter().next().unwrap().wait();
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(!outcome.summary.failed);
    assert_eq!(outcome.bins.len(), reference.bins.len());
    for ((sweep_a, bin_a), (sweep_b, bin_b)) in outcome.bins.iter().zip(&reference.bins) {
        assert_eq!(sweep_a, sweep_b);
        assert_eq!(bin_a, bin_b, "sweep {sweep_a}: rerun must be bitwise");
    }
}
