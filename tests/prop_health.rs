//! Property-based tests of the numerical health guardrails: for arbitrary
//! injected faults the stage-boundary probes detect the corruption at the
//! faulted stage, the recovery ladder heals the run to the clean
//! trajectory, escalation is deterministic, and error paths never leave a
//! poisoned cache behind.
//!
//! Requires the `fault-inject` feature (`cargo test --features
//! fault-inject`); the file compiles to nothing without it.

#![cfg(feature = "fault-inject")]

use std::sync::OnceLock;

use fsi::dqmc::{equal_time_green_stable, SweepConfig, Sweeper};
use fsi::pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi::runtime::health::inject::{self, FaultKind, Site, ANY_BLOCK};
use fsi::runtime::health::Stage;
use fsi::runtime::Par;
use fsi::selinv::Parallelism;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Same cacheable-regime shape as the fault drill: `stabilize_every = c`
/// anchors refreshes at a fixed slice residue, so the cluster cache scores
/// reuse and `Stage::Cache` sites can fire.
const L: usize = 16;
const C: usize = 4;
const SEED: u64 = 97;

fn builder() -> BlockBuilder {
    BlockBuilder::new(SquareLattice::square(2), HubbardParams::paper_validation(L))
}

fn sweep_config() -> SweepConfig {
    SweepConfig {
        c: C,
        stabilize_every: C,
        ..SweepConfig::default()
    }
}

/// One sweep of the fixed workload; returns the sweeper for inspection.
fn run_workload(builder: &BlockBuilder) -> Result<Sweeper<'_>, fsi::runtime::health::FsiError> {
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let field = HsField::random(L, 4, &mut rng);
    let mut s = Sweeper::new(builder, field, sweep_config())?;
    s.sweep(&mut rng, Parallelism::Serial)?;
    Ok(s)
}

/// Field-derived observable recomputed fresh from the final field, so
/// equal trajectories give bitwise-equal values.
fn field_observable(field: &HsField) -> f64 {
    let builder = builder();
    let mut obs = 0.0;
    for spin in Spin::BOTH {
        let pc = hubbard_pcyclic(&builder, field, spin);
        let g = equal_time_green_stable(Par::Seq, Par::Seq, &pc, 0, C)
            .expect("observable on a healthy field");
        let n = g.rows();
        obs += (0..n).map(|i| g[(i, i)]).sum::<f64>() / n as f64;
    }
    obs
}

/// Clean-run fingerprint, computed once (under the injection test lock).
fn clean_outcome() -> &'static (Vec<i8>, f64) {
    static CLEAN: OnceLock<(Vec<i8>, f64)> = OnceLock::new();
    CLEAN.get_or_init(|| {
        inject::disarm();
        let builder = builder();
        let s = run_workload(&builder).expect("clean run is healthy");
        assert!(
            !s.recovery_stats().any(),
            "clean run must not trigger recovery"
        );
        (s.field().to_flat(), field_observable(s.field()))
    })
}

/// Every injection site the pipeline's probes guard. `BitFlip` is a quiet
/// finite corruption only the cache checksum sees, so it is drilled at
/// `Stage::Cache` alone.
fn sites() -> Vec<Site> {
    let mut sites = Vec::new();
    for stage in [Stage::Cls, Stage::Bsofi, Stage::Green, Stage::Wrap] {
        for kind in [
            FaultKind::Nan,
            FaultKind::Inf,
            FaultKind::Huge,
            FaultKind::Scale,
        ] {
            sites.push(Site {
                stage,
                block: ANY_BLOCK,
                kind,
            });
        }
    }
    for kind in [
        FaultKind::Nan,
        FaultKind::Inf,
        FaultKind::Huge,
        FaultKind::Scale,
        FaultKind::BitFlip,
    ] {
        sites.push(Site {
            stage: Stage::Cache,
            block: ANY_BLOCK,
            kind,
        });
    }
    sites
}

fn site_strategy() -> impl Strategy<Value = Site> {
    let all = sites();
    (0..all.len()).prop_map(move |i| all[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) An armed fault is detected at the very stage boundary it
    /// corrupts: the run still succeeds, the fault demonstrably fired, and
    /// the first recorded health event is attributed to the armed stage.
    #[test]
    fn fault_is_detected_within_one_stage_boundary(site in site_strategy()) {
        let _lock = inject::test_lock();
        inject::arm(site);
        let builder = builder();
        let s = run_workload(&builder);
        let fired = inject::disarm();
        let s = s.expect("recovery absorbs the fault");
        prop_assert!(fired > 0, "site never fired: {site:?}");
        let events = &s.recovery_stats().events;
        prop_assert!(!events.is_empty(), "fault slipped through unprobed: {site:?}");
        prop_assert_eq!(
            events[0].stage(),
            site.stage,
            "detected at the wrong boundary: {:?}",
            events[0]
        );
    }

    /// (b) Post-recovery trajectory and observables match the clean run:
    /// the field bitwise, the field-derived observable to 1e-10.
    #[test]
    fn recovered_run_matches_clean_observables(site in site_strategy()) {
        let _lock = inject::test_lock();
        let (clean_field, clean_obs) = clean_outcome().clone();
        inject::arm(site);
        let builder = builder();
        let s = run_workload(&builder);
        let fired = inject::disarm();
        let s = s.expect("recovery absorbs the fault");
        prop_assert!(fired > 0, "site never fired: {site:?}");
        prop_assert_eq!(s.field().to_flat(), clean_field, "trajectory diverged: {:?}", site);
        let obs = field_observable(s.field());
        prop_assert!(
            (obs - clean_obs).abs() <= 1e-10,
            "observable drifted by {:e} for {:?}",
            (obs - clean_obs).abs(),
            site
        );
    }

    /// (c) The escalation ladder is deterministic: re-running the same
    /// sticky fault under the same seed replays the exact rung sequence
    /// and event log.
    #[test]
    fn recovery_ladder_is_deterministic(fires in 1u32..=6) {
        let _lock = inject::test_lock();
        // A sticky NaN at CLS re-poisons retries; each retry consumes one
        // fire per spin, so a budget of 6 pushes through rung 3.
        let site = Site { stage: Stage::Cls, block: ANY_BLOCK, kind: FaultKind::Nan };
        let run_once = || {
            inject::arm_times(site, fires);
            let builder = builder();
            let s = run_workload(&builder);
            let fired = inject::disarm();
            let s = s.expect("ladder absorbs a bounded sticky fault");
            let st = s.recovery_stats();
            let rungs = [
                st.cache_invalidations,
                st.cluster_shrinks,
                st.dense_fallbacks,
                st.from_scratch,
            ];
            let stages: Vec<Stage> = st.events.iter().map(|e| e.stage()).collect();
            (fired, rungs, stages, s.field().to_flat())
        };
        let a = run_once();
        let b = run_once();
        prop_assert_eq!(a, b, "ladder not deterministic at budget {}", fires);
    }

    /// (d) Error paths never leave a poisoned cache behind: after an
    /// inject + recover cycle, a warm-cache refresh is bitwise identical
    /// to a cold sweeper refreshed at the same slice from the same field.
    #[test]
    fn recovery_never_leaves_a_poisoned_cache(site in site_strategy()) {
        let _lock = inject::test_lock();
        inject::arm(site);
        let builder = builder();
        let s = run_workload(&builder);
        let fired = inject::disarm();
        let mut warm = s.expect("recovery absorbs the fault");
        prop_assert!(fired > 0, "site never fired: {site:?}");
        // Cold sweeper: same builder/config, the recovered field, no
        // history. Refresh both at the warm sweeper's anchor slice.
        let mut cold = Sweeper::new(&builder, warm.field().clone(), *warm.config())
            .expect("healthy");
        let anchor = L - 1;
        warm.refresh(anchor, Parallelism::Serial).expect("healthy");
        cold.refresh(anchor, Parallelism::Serial).expect("healthy");
        for spin in Spin::BOTH {
            let gw = warm.green(spin).as_slice();
            let gc = cold.green(spin).as_slice();
            prop_assert!(gw == gc, "warm refresh differs from cold after {site:?}");
        }
    }
}
