//! Property-based tests of the structure-exploiting sweep hot path: the
//! factored (and checkerboard) similarity wraps agree with the dense-GEMM
//! baseline for arbitrary fields and Green's functions, the incremental
//! cluster cache is bitwise-invisible under random flip trajectories, and
//! the spin-joined sweep is deterministic against its serial baseline.

use fsi::dense::{rel_error, test_matrix};
use fsi::dqmc::{
    equal_time_green_cached, equal_time_green_stable, wrap_dense, wrap_factored, SweepConfig,
    Sweeper,
};
use fsi::pcyclic::{hubbard_pcyclic, BlockBuilder, HsField, HubbardParams, Spin, SquareLattice};
use fsi::runtime::{Par, ThreadPool};
use fsi::selinv::{ClusterCache, Parallelism};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Valid sweep shapes: nx×nx lattice, l slices, slice index, spin, seed.
fn wrap_config() -> impl Strategy<Value = (usize, usize, usize, Spin, u64)> {
    (2usize..4, 2usize..7, any::<u64>(), any::<bool>()).prop_flat_map(|(nx, l, seed, up)| {
        (
            Just(nx),
            Just(l),
            0..l,
            Just(if up { Spin::Up } else { Spin::Down }),
            Just(seed),
        )
    })
}

fn builder(nx: usize, l: usize, checkerboard: bool) -> BlockBuilder {
    let params = HubbardParams {
        t: 1.0,
        u: 4.0,
        beta: 2.0,
        l,
    };
    if checkerboard {
        BlockBuilder::with_checkerboard(SquareLattice::square(nx), params)
    } else {
        BlockBuilder::new(SquareLattice::square(nx), params)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `wrap_factored` is the same linear map as `wrap_dense` — for any
    /// matrix, not just Green's functions — to well below 1e-12.
    #[test]
    fn factored_wrap_matches_dense_for_any_matrix(
        (nx, l, slice, spin, seed) in wrap_config(),
    ) {
        let builder = builder(nx, l, false);
        let n = nx * nx;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let field = HsField::random(l, n, &mut rng);
        let g0 = test_matrix(n, n, seed.wrapping_add(1));
        let mut dense = g0.clone();
        wrap_dense(Par::Seq, &builder, &field, slice, spin, &mut dense);
        let mut factored = g0;
        wrap_factored(Par::Seq, &builder, &field, slice, spin, &mut factored);
        let err = rel_error(&factored, &dense);
        prop_assert!(err < 1e-12, "(nx={nx}, l={l}, slice={slice}, {spin:?}): {err}");
    }

    /// Same equivalence through the checkerboard bond sweeps: both
    /// strategies see the same Trotterized `e^{tΔτK}`, so the O(N·bonds)
    /// path must still match its dense conjugation to 1e-12.
    #[test]
    fn checkerboard_wrap_matches_dense_for_any_matrix(
        (nx, l, slice, spin, seed) in wrap_config(),
    ) {
        let builder = builder(nx, l, true);
        let n = nx * nx;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let field = HsField::random(l, n, &mut rng);
        let g0 = test_matrix(n, n, seed.wrapping_add(1));
        let mut dense = g0.clone();
        wrap_dense(Par::Seq, &builder, &field, slice, spin, &mut dense);
        let mut factored = g0;
        wrap_factored(Par::Seq, &builder, &field, slice, spin, &mut factored);
        let err = rel_error(&factored, &dense);
        prop_assert!(err < 1e-12, "(nx={nx}, l={l}, slice={slice}, {spin:?}): {err}");
    }

    /// The cluster cache is bitwise-invisible: under an arbitrary sequence
    /// of flip rounds, the cached Green's function equals the cold
    /// recomputation exactly (same `cluster_product` path, reused products
    /// verbatim).
    #[test]
    fn cluster_cache_is_bitwise_under_random_flips(
        nx in 2usize..4,
        rounds in prop::collection::vec(
            prop::collection::vec((0usize..8, 0usize..4), 0..4), 1..5),
        seed in any::<u64>(),
    ) {
        let l = 8;
        let c = 4;
        let builder = builder(nx, l, false);
        let n = nx * nx;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut field = HsField::random(l, n, &mut rng);
        let mut cache = ClusterCache::new();
        for flips in rounds {
            let mut dirty = vec![false; l];
            for (sl, site) in flips {
                field.flip(sl, site % n);
                dirty[sl] = true;
            }
            let pc = hubbard_pcyclic(&builder, &field, Spin::Up);
            let k = 3; // fixed residue mod c: the cacheable regime
            let got = equal_time_green_cached(
                Par::Seq, Par::Seq, pc.blocks(), &dirty, &mut cache, k, c)
                .expect("healthy");
            let want = equal_time_green_stable(Par::Seq, Par::Seq, &pc, k, c)
                .expect("healthy");
            prop_assert_eq!(got.as_slice(), want.as_slice());
        }
    }

    /// Spin-joined sweeps over a pool reproduce the serial trajectory
    /// bit-for-bit under a fixed RNG seed: identical acceptance counts,
    /// field, and Green's functions.
    #[test]
    fn spin_parallel_sweep_is_deterministic(seed in any::<u64>()) {
        let l = 8;
        let builder = builder(2, l, false);
        let field = {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            HsField::random(l, 4, &mut rng)
        };
        let run = |par: Parallelism<'_>| {
            let mut s = Sweeper::new(&builder, field.clone(), SweepConfig::default()).expect("healthy");
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD5);
            let stats = s.sweep(&mut rng, par).expect("healthy");
            (stats.accepted, s.field().to_flat(),
             s.green(Spin::Up).clone(), s.green(Spin::Down).clone())
        };
        let (acc_s, field_s, gu_s, gd_s) = run(Parallelism::Serial);
        let pool = ThreadPool::new(3);
        let (acc_p, field_p, gu_p, gd_p) = run(Parallelism::OpenMp(&pool));
        prop_assert_eq!(acc_s, acc_p);
        prop_assert_eq!(field_s, field_p);
        prop_assert_eq!(gu_s.as_slice(), gu_p.as_slice());
        prop_assert_eq!(gd_s.as_slice(), gd_p.as_slice());
    }
}
