//! End-to-end tests of the structured tracing layer: span-tree
//! determinism, wall-time accounting of the FSI stages, exact per-stage
//! flop attribution, and NDJSON file round-tripping.
//!
//! The trace collector and level are process-global, so every test here
//! holds `trace::test_lock()` while tracing is enabled and restores the
//! `Off` level before releasing it.

use fsi::pcyclic::{random_pcyclic, BlockPCyclic};
use fsi::runtime::trace;
use fsi::runtime::{RunReport, TraceLevel};
use fsi::selinv::{fsi_with_q, Parallelism, Pattern, Selection};

fn test_matrix() -> BlockPCyclic {
    random_pcyclic(16, 24, 42)
}

fn traced_fsi_run(pc: &BlockPCyclic, c: usize) -> RunReport {
    trace::clear();
    let sel = Selection::new(Pattern::Columns, c, c / 2);
    let _ = fsi_with_q(Parallelism::Serial, pc, &sel);
    RunReport::capture("observability-test")
}

#[test]
fn span_tree_is_deterministic_across_identical_runs() {
    let _lock = trace::test_lock();
    trace::set_level(TraceLevel::Kernels);
    let pc = test_matrix();
    let a = traced_fsi_run(&pc, 6);
    let b = traced_fsi_run(&pc, 6);
    trace::set_level(TraceLevel::Off);
    trace::clear();
    // The signature covers span paths (name + ancestry), flop and byte
    // counts — everything except ids, threads, and timestamps — so two
    // identical serial runs must agree exactly.
    assert_eq!(a.tree_signature(), b.tree_signature());
    assert!(
        a.tree_signature().len() > 10,
        "kernel-level run should record many spans, got {}",
        a.tree_signature().len()
    );
}

#[test]
fn stage_walls_sum_to_driver_and_stage_flops_match_model() {
    let _lock = trace::test_lock();
    trace::set_level(TraceLevel::Stages);
    let (n, l, c) = (16usize, 24usize, 6usize);
    let pc = test_matrix();
    let report = traced_fsi_run(&pc, c);
    trace::set_level(TraceLevel::Off);
    trace::clear();

    // Wall-time accounting: the three stages partition the driver span up
    // to loop glue, so their sum must land within 5% of the "fsi" total.
    let stages = report.seconds_of("cls") + report.seconds_of("bsofi") + report.seconds_of("wrap");
    let total = report.seconds_of("fsi");
    assert!(total > 0.0, "driver span missing");
    let ratio = stages / total;
    assert!(
        (0.95..=1.0).contains(&ratio),
        "stage walls {stages:.6}s vs driver {total:.6}s (ratio {ratio:.4})"
    );

    // Flop accounting: CLS is exactly b chains of (c-1) NxN GEMMs, so the
    // measured span count must equal the analytic model to the flop.
    assert_eq!(report.flops_of("cls"), fsi::selinv::cls::cls_flops(n, l, c));
    // The driver span's inclusive count is exactly the sum of its stages
    // (nothing else in the driver charges flops).
    assert_eq!(
        report.flops_of("fsi"),
        report.flops_of("cls") + report.flops_of("bsofi") + report.flops_of("wrap")
    );
    // BSOFI/WRP closed forms are leading-order approximations; the
    // measured counts must stay within bookkeeping tolerance, with a firm
    // lower bound so unaccounted kernels are caught.
    let b = l / c;
    let bsofi_ratio =
        report.flops_of("bsofi") as f64 / fsi::selinv::bsofi::bsofi_flops(n, b) as f64;
    assert!(
        (0.3..=2.0).contains(&bsofi_ratio),
        "bsofi ratio {bsofi_ratio}"
    );
    let wrap_ratio = report.flops_of("wrap") as f64 / fsi::selinv::wrap::wrap_flops(n, l, c) as f64;
    assert!((0.5..=1.5).contains(&wrap_ratio), "wrap ratio {wrap_ratio}");
}

#[test]
fn ndjson_report_round_trips_through_a_file() {
    let report = {
        let _lock = trace::test_lock();
        trace::set_level(TraceLevel::Stages);
        let pc = test_matrix();
        let report = traced_fsi_run(&pc, 4);
        trace::set_level(TraceLevel::Off);
        trace::clear();
        report
    };
    let dir = std::env::temp_dir().join("fsi-observability-test");
    let path = dir.join("roundtrip.trace.ndjson");
    report.write_ndjson(&path).expect("write ndjson");
    let text = std::fs::read_to_string(&path).expect("read back");
    let parsed = RunReport::parse_ndjson(&text).expect("parse ndjson");
    assert_eq!(parsed, report);
    // Chrome view is valid JSON with one event per span.
    let chrome = path.with_extension("json");
    report.write_chrome_trace(&chrome).expect("write chrome");
    let chrome_text = std::fs::read_to_string(&chrome).expect("read chrome");
    let json = fsi::runtime::trace::Json::parse(&chrome_text).expect("chrome JSON parses");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let span_events = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    assert_eq!(span_events, report.spans.len());
    let _ = std::fs::remove_dir_all(&dir);
}
