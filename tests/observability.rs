//! End-to-end tests of the structured tracing layer: span-tree
//! determinism, wall-time accounting of the FSI stages, exact per-stage
//! flop attribution, and NDJSON file round-tripping.
//!
//! The trace collector and level are process-global, so every test here
//! holds `trace::test_lock()` while tracing is enabled and restores the
//! `Off` level before releasing it.

use fsi::dqmc::{SweepConfig, Sweeper};
use fsi::pcyclic::{
    random_pcyclic, BlockBuilder, BlockPCyclic, HsField, HubbardParams, SquareLattice,
};
use fsi::runtime::flops::counts;
use fsi::runtime::trace;
use fsi::runtime::{RunReport, TraceLevel};
use fsi::selinv::{fsi_with_q, Parallelism, Pattern, Selection};
use rand::SeedableRng;

fn test_matrix() -> BlockPCyclic {
    random_pcyclic(16, 24, 42)
}

fn traced_fsi_run(pc: &BlockPCyclic, c: usize) -> RunReport {
    trace::clear();
    let sel = Selection::new(Pattern::Columns, c, c / 2);
    let _ = fsi_with_q(Parallelism::Serial, pc, &sel);
    RunReport::capture("observability-test")
}

#[test]
fn span_tree_is_deterministic_across_identical_runs() {
    let _lock = trace::test_lock();
    trace::set_level(TraceLevel::Kernels);
    let pc = test_matrix();
    let a = traced_fsi_run(&pc, 6);
    let b = traced_fsi_run(&pc, 6);
    trace::set_level(TraceLevel::Off);
    trace::clear();
    // The signature covers span paths (name + ancestry), flop and byte
    // counts — everything except ids, threads, and timestamps — so two
    // identical serial runs must agree exactly.
    assert_eq!(a.tree_signature(), b.tree_signature());
    assert!(
        a.tree_signature().len() > 10,
        "kernel-level run should record many spans, got {}",
        a.tree_signature().len()
    );
}

#[test]
fn stage_walls_sum_to_driver_and_stage_flops_match_model() {
    let _lock = trace::test_lock();
    trace::set_level(TraceLevel::Stages);
    let (n, l, c) = (16usize, 24usize, 6usize);
    let pc = test_matrix();
    let report = traced_fsi_run(&pc, c);
    trace::set_level(TraceLevel::Off);
    trace::clear();

    // Wall-time accounting: the three stages partition the driver span up
    // to loop glue, so their sum must land within 5% of the "fsi" total.
    let stages = report.seconds_of("cls") + report.seconds_of("bsofi") + report.seconds_of("wrap");
    let total = report.seconds_of("fsi");
    assert!(total > 0.0, "driver span missing");
    let ratio = stages / total;
    assert!(
        (0.95..=1.0).contains(&ratio),
        "stage walls {stages:.6}s vs driver {total:.6}s (ratio {ratio:.4})"
    );

    // Flop accounting: CLS is exactly b chains of (c-1) NxN GEMMs, so the
    // measured span count must equal the analytic model to the flop.
    assert_eq!(report.flops_of("cls"), fsi::selinv::cls::cls_flops(n, l, c));
    // The driver span's inclusive count is exactly the sum of its stages
    // (nothing else in the driver charges flops).
    assert_eq!(
        report.flops_of("fsi"),
        report.flops_of("cls") + report.flops_of("bsofi") + report.flops_of("wrap")
    );
    // BSOFI/WRP closed forms are leading-order approximations; the
    // measured counts must stay within bookkeeping tolerance, with a firm
    // lower bound so unaccounted kernels are caught.
    let b = l / c;
    let bsofi_ratio =
        report.flops_of("bsofi") as f64 / fsi::selinv::bsofi::bsofi_flops(n, b) as f64;
    assert!(
        (0.3..=2.0).contains(&bsofi_ratio),
        "bsofi ratio {bsofi_ratio}"
    );
    let wrap_ratio = report.flops_of("wrap") as f64 / fsi::selinv::wrap::wrap_flops(n, l, c) as f64;
    assert!((0.5..=1.5).contains(&wrap_ratio), "wrap ratio {wrap_ratio}");
}

#[test]
fn selected_bsofi_span_flops_match_the_exact_model() {
    let _lock = trace::test_lock();
    trace::set_level(TraceLevel::Stages);
    let (n, l, c) = (16usize, 24usize, 6usize);
    let b = l / c;
    let pc = test_matrix();
    trace::clear();
    // A diagonal selection routes BSOFI through the selected-assembly path.
    let sel = Selection::new(Pattern::Diagonal, c, c / 2);
    let _ = fsi_with_q(Parallelism::Serial, &pc, &sel);
    let report = RunReport::capture("selected-bsofi-observability");
    trace::set_level(TraceLevel::Off);
    trace::clear();

    // The selected span's inclusive flops equal the kernel-exact model to
    // the flop, and the factor sub-span equals the structured-QR model.
    let pattern = fsi::selinv::SelectedPattern::Diagonals;
    assert_eq!(
        report.flops_of("bsofi.selected"),
        fsi::selinv::bsofi_selected_flops(n, b, &pattern)
    );
    assert_eq!(
        report.flops_of("bsofi.lookahead"),
        fsi::selinv::structured_qr_flops(n, b)
    );
    // Everything the bsofi stage charges flows through the selected span.
    assert_eq!(report.flops_of("bsofi"), report.flops_of("bsofi.selected"));
    // S1 wraps are free (the seeds ARE the selection) — the saving that
    // motivates the pattern-aware path.
    assert_eq!(report.flops_of("wrap"), 0);
}

#[test]
fn sweep_spans_fire_and_cache_flops_match_the_incremental_model() {
    let _lock = trace::test_lock();
    let (n, l, c) = (4usize, 8usize, 4usize);
    let builder = BlockBuilder::new(
        SquareLattice::square(2),
        HubbardParams {
            t: 1.0,
            u: 4.0,
            beta: 2.0,
            l,
        },
    );
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
    let field = HsField::random(l, n, &mut rng);
    trace::set_level(TraceLevel::Stages);
    trace::clear();
    // Cold build (traced) + one sweep whose start-of-sweep refresh is warm.
    let mut s = Sweeper::new(&builder, field, SweepConfig::default()).expect("healthy");
    let mut sweep_rng = rand_chacha::ChaCha8Rng::seed_from_u64(22);
    s.sweep(&mut sweep_rng, Parallelism::Serial)
        .expect("healthy");
    let report = RunReport::capture("sweep-observability");
    trace::set_level(TraceLevel::Off);
    trace::clear();

    // The hot-path spans all fire: factored wraps, spin-joined phases, and
    // the per-cluster cache verdict counters.
    assert!(report.count_of("wrap.factored") > 0, "no factored wraps");
    assert!(report.count_of("sweep.spin_par") > 0, "no spin joins");
    let hits = report.count_of("cls.cache_hit");
    let misses = report.count_of("cls.cache_miss");
    assert!(hits > 0, "warm refresh scored no cache hits");
    // Every refresh touches 2·b products (both spins); strictly fewer than
    // that many misses per refresh means the warm pass reused clusters.
    let per_refresh = 2 * (l / c);
    let refreshes = (hits + misses) / per_refresh;
    assert_eq!(hits + misses, refreshes * per_refresh, "partial refresh?");
    assert!(
        misses < refreshes * per_refresh,
        "warm refreshes must rebuild strictly fewer products than cold"
    );

    // Flop attribution: each cache miss recomputes one (c-1)-GEMM cluster
    // chain, so the cache_miss spans' inclusive flops must equal the
    // incremental CLS model exactly.
    assert_eq!(
        report.flops_of("cls.cache_miss"),
        fsi::selinv::cls_incremental_flops(n, c, misses)
    );
    // And each factored wrap is the 2N² diagonal similarity plus two
    // kinetic GEMMs (dense-exp builder).
    let per_wrap = 2 * (n * n) as u64 + 2 * counts::gemm(n, n, n);
    assert_eq!(
        report.flops_of("wrap.factored"),
        report.count_of("wrap.factored") as u64 * per_wrap
    );
}

#[test]
fn ndjson_report_round_trips_through_a_file() {
    let report = {
        let _lock = trace::test_lock();
        trace::set_level(TraceLevel::Stages);
        let pc = test_matrix();
        let report = traced_fsi_run(&pc, 4);
        trace::set_level(TraceLevel::Off);
        trace::clear();
        report
    };
    let dir = std::env::temp_dir().join("fsi-observability-test");
    let path = dir.join("roundtrip.trace.ndjson");
    report.write_ndjson(&path).expect("write ndjson");
    let text = std::fs::read_to_string(&path).expect("read back");
    let parsed = RunReport::parse_ndjson(&text).expect("parse ndjson");
    assert_eq!(parsed, report);
    // Chrome view is valid JSON with one event per span.
    let chrome = path.with_extension("json");
    report.write_chrome_trace(&chrome).expect("write chrome");
    let chrome_text = std::fs::read_to_string(&chrome).expect("read chrome");
    let json = fsi::runtime::trace::Json::parse(&chrome_text).expect("chrome JSON parses");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let span_events = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    assert_eq!(span_events, report.spans.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected fault shows up in the exporter: the probe's `health.*`
/// marker and every ladder rung's `recovery.*` span survive the NDJSON
/// round trip, so a trace of a degraded run shows exactly what recovered.
#[cfg(feature = "fault-inject")]
#[test]
fn health_and_recovery_spans_reach_the_ndjson_exporter() {
    use fsi::runtime::health::inject::{self, FaultKind, Site, ANY_BLOCK};
    use fsi::runtime::health::Stage;

    let _inject_lock = inject::test_lock();
    let report = {
        let _lock = trace::test_lock();
        let builder = BlockBuilder::new(
            SquareLattice::square(2),
            HubbardParams {
                t: 1.0,
                u: 4.0,
                beta: 2.0,
                l: 8,
            },
        );
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        let field = HsField::random(8, 4, &mut rng);
        trace::set_level(TraceLevel::Stages);
        trace::clear();
        inject::arm(Site {
            stage: Stage::Cls,
            block: ANY_BLOCK,
            kind: FaultKind::Nan,
        });
        let s = Sweeper::new(&builder, field, SweepConfig::default());
        let fired = inject::disarm();
        let report = RunReport::capture("recovery-observability");
        trace::set_level(TraceLevel::Off);
        trace::clear();
        s.expect("rung 1 absorbs a one-shot fault");
        assert!(fired > 0, "fault never fired");
        report
    };
    assert!(
        report.count_of("health.non_finite") > 0,
        "probe marker missing from trace"
    );
    assert!(
        report.count_of("recovery.invalidate_caches") > 0,
        "recovery rung span missing from trace"
    );

    let dir = std::env::temp_dir().join("fsi-recovery-observability-test");
    let path = dir.join("recovery.trace.ndjson");
    report.write_ndjson(&path).expect("write ndjson");
    let text = std::fs::read_to_string(&path).expect("read back");
    let parsed = RunReport::parse_ndjson(&text).expect("parse ndjson");
    assert!(parsed.count_of("health.non_finite") > 0);
    assert!(parsed.count_of("recovery.invalidate_caches") > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
