//! Service-tier properties: work-stealing execution is bitwise-equal to
//! the paper-literal static scatter, saturated-queue admission rejects
//! with a reason instead of deadlocking, and (under `fault-inject`) a
//! fault-injected job degrades alone while its neighbors' outputs stay
//! bitwise-identical.

use fsi::pcyclic::{BlockBuilder, HubbardParams, SquareLattice};
use fsi::selinv::{
    generate_fields, run_multi, trace_measure, MatrixTask, MultiConfig, Parallelism, Pattern,
    Scheduling,
};
use fsi::service::{AdmitError, JobSpec, Service, ServiceConfig};
use proptest::prelude::*;

const SIDE: usize = 2;
const L: usize = 8;
const C: usize = 4;

fn spec(tenant: &str, sweeps: usize, seed: u64) -> JobSpec {
    JobSpec::new(tenant, SIDE, L, C, sweeps, seed)
}

/// The clean per-sweep reference: the same `(seed, sweep)`-deterministic
/// task pipeline the service runs, executed directly.
fn reference_bins(spec: &JobSpec) -> Vec<Vec<f64>> {
    let builder = BlockBuilder::new(
        SquareLattice::square(spec.side),
        HubbardParams::paper_validation(spec.l),
    );
    generate_fields(spec.l, spec.n_sites(), spec.sweeps, spec.seed)
        .into_iter()
        .enumerate()
        .map(|(sweep, field)| {
            let mut task = MatrixTask::new(sweep, field, spec.c, spec.pattern, spec.seed);
            task.run(Parallelism::Serial, &builder, &trace_measure)
                .expect("clean reference run");
            task.into_quantities().1
        })
        .collect()
}

#[test]
fn service_bins_match_static_scatter_bitwise() {
    let job_spec = spec("bitwise", 6, 4242);
    let reference = reference_bins(&job_spec);

    // The service (work-stealing, any worker count) must reproduce the
    // reference bins bit for bit.
    for workers in [1usize, 2, 3] {
        let service = Service::start(ServiceConfig::small(workers));
        let outcome = service
            .handle()
            .submit(job_spec.clone())
            .expect("admitted")
            .wait();
        service.shutdown();
        assert!(!outcome.summary.failed);
        assert_eq!(outcome.bins.len(), job_spec.sweeps);
        for (sweep, quantities) in &outcome.bins {
            assert_eq!(
                quantities, &reference[*sweep],
                "workers={workers} sweep={sweep}: stealing must match the static reference bitwise"
            );
        }
    }

    // And the paper-literal Alg. 3 driver agrees on the ordered sum.
    let builder = BlockBuilder::new(
        SquareLattice::square(SIDE),
        HubbardParams::paper_validation(L),
    );
    let cfg = MultiConfig {
        ranks: 2,
        threads_per_rank: 1,
        matrices: job_spec.sweeps,
        c: C,
        pattern: Pattern::Diagonal,
        seed: job_spec.seed,
        scheduling: Scheduling::Static,
    };
    let multi = run_multi(&builder, &cfg, &trace_measure).expect("healthy");
    let mut summed = vec![0.0; multi.global_measurements.len()];
    for bin in &reference {
        for (a, v) in summed.iter_mut().zip(bin) {
            *a += v;
        }
    }
    assert_eq!(summed, multi.global_measurements);
}

#[test]
fn saturated_queue_rejects_instead_of_deadlocking() {
    // A single slow worker: the measure hook parks each sweep long
    // enough that queued work cannot drain under the test's feet.
    let mut cfg = ServiceConfig::small(1);
    cfg.queue_capacity = 4;
    let service = Service::start_with(cfg, |s| {
        std::thread::sleep(std::time::Duration::from_millis(30));
        trace_measure(s)
    });
    let handle = service.handle();

    // A job bigger than the queue can never be admitted.
    let oversized = spec("big", 5, 1);
    assert!(matches!(
        handle.submit(oversized),
        Err(AdmitError::QueueFull { capacity: 4, .. })
    ));

    // Fill the queue, then a non-blocking submit must return Err (not
    // hang): the worker is asleep inside sweep 1 of 4.
    let first = handle.submit(spec("filler", 4, 2)).expect("fits");
    let err = handle
        .submit(spec("late", 1, 3))
        .expect_err("queue is full");
    assert!(matches!(err, AdmitError::QueueFull { .. }));

    // The blocking flavor applies backpressure and eventually lands.
    let second = handle
        .submit_blocking(spec("late", 1, 3))
        .expect("admitted");
    let first = first.wait();
    let second = second.wait();
    assert!(!first.summary.failed && !second.summary.failed);
    assert_eq!(first.bins.len(), 4);
    assert_eq!(second.bins.len(), 1);
    service.shutdown();
}

#[test]
fn memory_budget_rejects_oversized_shapes() {
    // Edison model, 24 workers: the paper's N = 576 pure-MPI OOM case
    // must be refused at the door.
    let mut cfg = ServiceConfig::small(24);
    cfg.memory = fsi::selinv::MemoryModel::edison();
    let service = Service::start(cfg);
    let mut big = JobSpec::new("oom", 24, 100, 10, 1, 0); // N = 576
    big.pattern = Pattern::Columns;
    let err = service.handle().submit(big).expect_err("must not fit");
    assert!(matches!(err, AdmitError::MemoryBudget { .. }));
    service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural validation is total: `validate()` accepts exactly the
    /// specs whose dimensions are positive and whose `c` divides `L`.
    #[test]
    fn spec_validation_matches_constraints(
        side in 0usize..4,
        l in 0usize..12,
        c in 0usize..12,
        sweeps in 0usize..4,
    ) {
        let spec = JobSpec::new("prop", side, l, c, sweeps, 0);
        let structurally_ok = side > 0
            && l > 0
            && c > 0
            && sweeps > 0
            && c <= l
            && l.is_multiple_of(c);
        prop_assert_eq!(spec.validate().is_ok(), structurally_ok);
    }
}

/// Fault-injected degradation stays scoped to the sick job.
#[cfg(feature = "fault-inject")]
mod fault_isolation {
    use super::*;
    use fsi::runtime::health::inject::{self, FaultKind, Site, ANY_BLOCK};
    use fsi::runtime::health::Stage;

    #[test]
    fn faulted_job_degrades_alone_neighbors_bitwise_clean() {
        let _guard = inject::test_lock();
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| spec(&format!("tenant-{i}"), 4, 1000 + i as u64))
            .collect();
        let references: Vec<Vec<Vec<f64>>> = specs.iter().map(reference_bins).collect();

        // One NaN, once, at the wrap output boundary of whichever sweep
        // reaches it first.
        inject::arm_times(
            Site {
                stage: Stage::Wrap,
                block: ANY_BLOCK,
                kind: FaultKind::Nan,
            },
            1,
        );
        let service = Service::start(ServiceConfig::small(2));
        let handle = service.handle();
        let handles: Vec<_> = specs
            .iter()
            .map(|s| handle.submit(s.clone()).expect("admitted"))
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
        service.shutdown();
        assert_eq!(inject::disarm(), 1, "the fault fired exactly once");

        // Exactly one job descended one ladder rung; every job finished.
        let degraded: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.summary.degradations > 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(degraded.len(), 1, "one fault ⇒ one degraded job");
        let sick = degraded[0];
        assert_eq!(outcomes[sick].summary.degradations, 1);
        assert_eq!(outcomes[sick].summary.c_final, C / 2);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert!(!outcome.summary.failed, "job {i} must recover, not fail");
            assert_eq!(outcome.bins.len(), specs[i].sweeps, "job {i} lost bins");
        }

        // Neighbors are bitwise-identical to the clean reference.
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == sick {
                continue;
            }
            for (sweep, quantities) in &outcome.bins {
                assert_eq!(
                    quantities, &references[i][*sweep],
                    "job {i} sweep {sweep}: neighbor of a faulted job must be unperturbed"
                );
            }
        }
    }
}
