//! Offline stand-in for `rand` 0.8 — see `vendor/README.md`.
//!
//! Implements the exact API surface the FSI workspace uses: [`RngCore`],
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`SeedableRng`] with the same `seed_from_u64` expansion as `rand_core`
//! 0.6 (a PCG32 step per 32-bit seed word), so seeded streams match the
//! upstream crate's seeding behaviour.

/// Low-level uniform bit generator.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits (two `next_u32` calls,
    /// low word first — the `rand_core` block-RNG convention).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (`rand`'s `Standard`
/// distribution, collapsed into a single trait).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream uses the top bit of a u32.
        (rng.next_u32() >> 31) == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream `Standard` for f64: 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Integer types that [`Rng::gen_range`] can sample from a `Range`.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                // Unbiased rejection sampling (Lemire's method).
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    let lo = m as u64;
                    if lo >= span || lo >= (u64::MAX - span + 1) % span {
                        return low.wrapping_add((m >> 64) as u64 as $t);
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * f64::sample(rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type (e.g. `[u8; 32]` for ChaCha).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with one PCG32 step per 32-bit
    /// word — byte-for-byte the `rand_core` 0.6 algorithm, so seeded
    /// streams match the upstream crates.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9E37_79B9);
            (self.0 >> 8) as u32
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Counter(99);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
