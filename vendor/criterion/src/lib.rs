//! Offline stand-in for `criterion` — see `vendor/README.md`.
//!
//! A plain wall-clock harness with criterion's API shape: benchmark
//! groups, per-benchmark throughput annotations, and `Bencher::iter`.
//! Each benchmark warms up briefly, then runs timed batches until a fixed
//! time budget is spent and reports the best per-iteration time (the
//! minimum is the standard low-noise estimator for micro-benchmarks).
//! There is no statistical analysis, HTML report, or baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box so `criterion::black_box` works.
pub use std::hint::black_box;

/// Time budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Time budget spent warming up each benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted for API parity;
    /// filters and flags are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 0,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&name.into(), None, &mut f);
        self
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements (the workspace uses flops) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; the harness sizes samples by time budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    /// Best (minimum) observed per-iteration time.
    best_ns: f64,
    /// Total iterations executed during measurement.
    iters: u64,
}

impl Bencher {
    /// Measures `f`, storing the best per-iteration wall time.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup: run until the warmup budget is spent; estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch size targeting ~10ms per sample.
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.best_ns = self.best_ns.min(ns);
            self.iters += batch;
        }
    }
}

fn run_benchmark(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        best_ns: f64::INFINITY,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("   thrpt: {:>10.3} Melem/s", n as f64 / b.best_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "   thrpt: {:>10.3} MiB/s",
                n as f64 / b.best_ns * 1e3 / 1.048_576
            )
        }
        None => String::new(),
    };
    println!(
        "{name:<40} time: {}{rate}   ({} iters)",
        format_ns(b.best_ns),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:>9.2} ns/iter")
    } else if ns < 1e6 {
        format!("{:>9.3} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:>9.3} ms/iter", ns / 1e6)
    } else {
        format!("{:>9.3}  s/iter", ns / 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1000));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).id, "gemm/64");
        assert_eq!(BenchmarkId::from_parameter(128).id, "128");
    }
}
