//! Offline stand-in for `crossbeam-channel` — see `vendor/README.md`.
//!
//! A multi-producer multi-consumer unbounded FIFO channel built on
//! `Mutex<VecDeque>` + `Condvar`. The FSI thread pool and the in-process
//! "MPI ranks" move coarse O(N³) jobs and block messages through these
//! channels, so a lock-based queue is plenty fast; only the API shape of
//! the upstream crate matters here.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half; clonable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clonable (each message is delivered to exactly one
/// receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// No message queued right now.
    Empty,
    /// Queue empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// Timed out with no message.
    Timeout,
    /// Queue empty and every sender is gone.
    Disconnected,
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails only if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Wake blocked receivers so they observe disconnection.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; fails once the queue is empty and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.ready.wait(inner).expect("channel poisoned");
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        match inner.queue.pop_front() {
            Some(v) => Ok(v),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .ready
                .wait_timeout(inner, deadline - now)
                .expect("channel poisoned");
            inner = guard;
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10);
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnection_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1u8), Err(SendError(1u8)));
    }

    #[test]
    fn timeout_fires_without_messages() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0usize;
                    while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
