//! Offline stand-in for `rand_chacha` 0.3 — see `vendor/README.md`.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha8 stream cipher used as an RNG: the
//! 256-bit key comes from the seed, the block counter starts at zero, and
//! the keystream is served as little-endian `u32` words in block order —
//! the same construction as the upstream crate. Seeded streams are
//! therefore high-quality, deterministic, and portable across platforms.

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds (ChaCha8 = 4 double-rounds).
const DOUBLE_ROUNDS: usize = 4;

/// A ChaCha8 random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Stream id (state words 14..16); fixed to 0 like the default stream.
    stream: u64,
    /// Current 16-word keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the next keystream block into `self.block`.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.block.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl ChaCha8Rng {
    /// The number of 32-bit keystream words consumed so far — the
    /// upstream crate's `get_word_pos` (restricted to `u64`, plenty for
    /// any simulation). Together with the seed this pins the stream
    /// state exactly, which is what checkpoint/restart needs.
    pub fn word_pos(&self) -> u64 {
        if self.index >= 16 {
            // Block exhausted (or never generated): `counter` blocks of
            // 16 words have been fully served.
            self.counter.wrapping_mul(16)
        } else {
            // Mid-block: `counter` was already incremented by `refill`.
            self.counter.wrapping_sub(1).wrapping_mul(16) + self.index as u64
        }
    }

    /// Repositions the stream to word `pos`, as previously observed via
    /// [`ChaCha8Rng::word_pos`] on a generator with the same seed. The
    /// next `next_u32` returns exactly the word the original generator
    /// would have returned.
    pub fn set_word_pos(&mut self, pos: u64) {
        self.counter = pos / 16;
        self.index = 16;
        let rem = (pos % 16) as usize;
        if rem != 0 {
            self.refill(); // advances counter, sets index = 0
            self.index = rem;
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be uncorrelated, {same}/32 equal");
    }

    #[test]
    fn keystream_is_balanced() {
        // Crude statistical sanity: mean of uniform f64s near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn word_pos_round_trips_at_every_offset() {
        // For each number of consumed words, a fresh generator fast-
        // forwarded via set_word_pos must continue bitwise identically.
        for consumed in [0usize, 1, 5, 15, 16, 17, 31, 32, 100] {
            let mut original = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..consumed {
                original.next_u32();
            }
            assert_eq!(original.word_pos(), consumed as u64);
            let mut resumed = ChaCha8Rng::seed_from_u64(99);
            resumed.set_word_pos(consumed as u64);
            for i in 0..64 {
                assert_eq!(
                    original.next_u32(),
                    resumed.next_u32(),
                    "divergence at word {i} after {consumed} consumed"
                );
            }
        }
    }

    #[test]
    fn chacha_rfc_structure_counter_advances() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "consecutive blocks must differ");
    }
}
