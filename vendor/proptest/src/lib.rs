//! Offline stand-in for `proptest` — see `vendor/README.md`.
//!
//! Implements the subset of proptest the FSI workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`Just`], [`any`], `collection::vec`, and
//! the `prop_assert!` family. Cases are generated from a deterministic
//! ChaCha8 stream (seeded per test so runs are reproducible); failing
//! cases are reported with their case index but are **not shrunk**.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic RNG handed to strategies while generating a case.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Creates the RNG for one property function from a stable seed.
    pub fn deterministic(seed: u64) -> Self {
        TestRng(ChaCha8Rng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo == hi { lo } else { rng.gen_range(lo..hi) }
            }
        }
    )*};
}
impl_range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u64, u32, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, broadly ranged values (no NaN/inf — the workspace's
        // numeric properties assume finite inputs).
        let mag: f64 = rng.gen();
        let exp: i32 = rng.gen_range(-30..30);
        (mag - 0.5) * 2.0f64.powi(exp)
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property, reporting the failing message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Stable per-test seed: hash of the test name.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x1000_0000_01b3);
                }
                let mut rng = $crate::TestRng::deterministic(seed);
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                    let run = || -> () { $body };
                    if let Err(payload) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (seed {:#x})",
                            stringify!($name), case + 1, config.cases, seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Prelude: everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_honoured(n in 3usize..9, x in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            let _ = b;
        }

        #[test]
        fn flat_map_dependent_generation(
            (l, c) in (1usize..6).prop_flat_map(|c| (Just(4 * c), Just(c)))
        ) {
            prop_assert_eq!(l % c, 0);
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0i64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let mut a = crate::TestRng::deterministic(7);
        let mut b = crate::TestRng::deterministic(7);
        let s = 0usize..100;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
